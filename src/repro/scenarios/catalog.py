"""Named scenario presets and the ``scenario:`` workload-name bridge.

Presets are starting points covering distinct schema/domain regimes; every
knob is a :class:`~repro.scenarios.spec.ScenarioSpec` field, so adding a
scenario is one entry here (or an ad-hoc spec passed straight to the
generator/sweep).

The bridge makes generated scenarios first-class workloads: any API that
accepts a workload name — ``repro.workloads.build_pair``, the experiments
runner, the session service's checkpoint-by-reference resume — also accepts
``scenario:<preset>`` or ``scenario:<preset>@<seed>``.
"""

from __future__ import annotations

from repro.scenarios.generator import scenario_database, scenario_queries
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "SCENARIOS",
    "scenario_names",
    "get_scenario",
    "parse_scenario_name",
    "scenario_workload",
]

#: Workload-name prefix routing a name to the scenario engine.
SCENARIO_PREFIX = "scenario:"

SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        # A 3-table foreign-key chain with a plain int/float/string mix — the
        # "ordinary schema" baseline.
        ScenarioSpec(
            name="chain",
            depth=2,
            fanout=1,
            root_rows=90,
            child_row_factor=1.5,
            int_columns=2,
            float_columns=1,
            str_columns=1,
            selectivity=0.35,
            query_count=4,
        ),
        # A star: one root with three children, categorical- and bool-heavy,
        # wider fan-out with shallower joins.
        ScenarioSpec(
            name="star",
            depth=1,
            fanout=3,
            root_rows=80,
            child_row_factor=1.8,
            int_columns=1,
            float_columns=1,
            str_columns=2,
            bool_columns=1,
            categories=6,
            selectivity=0.45,
            query_count=4,
        ),
        # The numeric-hardening scenario: a 7-table binary tree whose domains
        # include integers straddling 2^53 and 7-decimal float thresholds —
        # exactly where float() round-trips and "{:g}" rendering detonate.
        ScenarioSpec(
            name="mixed",
            depth=2,
            fanout=2,
            root_rows=60,
            child_row_factor=1.6,
            int_columns=1,
            float_columns=2,
            str_columns=1,
            bool_columns=1,
            huge_ints=True,
            float_digits=7,
            selectivity=0.4,
            query_count=5,
        ),
    )
}


def scenario_names() -> list[str]:
    """All preset names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a preset by bare name (``chain``) or raise ``KeyError``."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def parse_scenario_name(name: str) -> tuple[ScenarioSpec, int | None] | None:
    """Parse ``scenario:<preset>[@<seed>]`` into ``(spec, seed)``.

    Returns ``None`` for names without the ``scenario:`` prefix (the caller
    falls through to the static workload registry); raises ``KeyError`` /
    ``ValueError`` for a malformed scenario name.
    """
    if not name.startswith(SCENARIO_PREFIX):
        return None
    rest = name[len(SCENARIO_PREFIX):]
    preset, _, seed_text = rest.partition("@")
    spec = get_scenario(preset)
    if not seed_text:
        return spec, None
    try:
        seed = int(seed_text)
    except ValueError:
        raise ValueError(
            f"scenario seed must be an integer, got {seed_text!r} in {name!r}"
        ) from None
    return spec, seed


def scenario_workload(name: str):
    """A :class:`~repro.workloads.Workload` for a ``scenario:`` name.

    The returned workload rebuilds the database deterministically from
    ``(spec, seed, scale)`` — which is what lets the service layer checkpoint
    scenario sessions by reference and resume them after a process kill, the
    same way it handles the paper workloads.
    """
    from repro.workloads.paper_queries import Workload

    parsed = parse_scenario_name(name)
    if parsed is None:
        raise KeyError(f"{name!r} is not a scenario workload name")
    spec, seed = parsed
    canonical = f"{SCENARIO_PREFIX}{spec.name}" + (f"@{seed}" if seed is not None else "")
    queries = scenario_queries(spec, seed)
    return Workload(
        name=canonical,
        dataset="scenario",
        build_database=lambda scale=1.0: scenario_database(spec, scale, seed),
        target_query=queries[0],
        expected_result_size=-1,
    )
