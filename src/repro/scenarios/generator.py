"""Deterministic scenario generation: ``(spec, scale, seed)`` → database + queries.

Two independent seeded RNG streams keep the contract clean:

* the **query stream** depends only on ``(spec, seed)`` — never on the scale
  or the generated rows — so a scenario's workload queries are *scale
  invariant*: the same SQL sweeps every scale factor, which is what makes a
  per-scale trajectory comparable;
* one **table stream per table** drives the row data, so every build at a
  given ``(spec, scale, seed)`` is bit-for-bit reproducible (the property the
  checkpoint/resume machinery relies on when it rebuilds a scenario database
  from a workload reference).

Every table plants ``spec.planted_rows`` rows with fixed attribute values
(ints at the domain midpoint, floats at 0.5, strings at the first category,
booleans ``True``, huge ints at exactly 2^53) and wires planted children to
planted parents, and every generated term is chosen to admit the planted
values — so each workload query has a non-empty result at every scale.

The ``huge_ints`` domain intentionally straddles 2^53 (odd offsets included)
and float columns carry ``float_digits``-decimal constants: the exact regime
where a ``float()`` round-trip in the evaluator or 6-significant-digit SQL
rendering silently diverges from the SQLite oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.synth import rng_for, scaled_count
from repro.relational.database import Database
from repro.relational.predicates import ComparisonOp, Conjunct, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.schema import ForeignKey
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "GeneratedScenario",
    "generate_scenario",
    "scenario_database",
    "scenario_queries",
    "scenario_tables",
]

#: Exact center of the huge-integer domain: the first integer a double cannot
#: distinguish from its successor.
HUGE_BASE = 2**53
#: Background huge-int values land in ``HUGE_BASE ± HUGE_SPREAD`` (odd
#: offsets included, so neighbouring values differ below float precision).
HUGE_SPREAD = 400


@dataclass(frozen=True)
class _Table:
    """One node of the foreign-key tree."""

    name: str
    parent: str | None
    level: int


def scenario_tables(spec: ScenarioSpec) -> tuple[_Table, ...]:
    """The scenario's tables in breadth-first order (root first)."""
    tables = [_Table("t0", None, 0)]
    frontier = [tables[0]]
    counter = 1
    for level in range(1, spec.depth + 1):
        next_frontier = []
        for parent in frontier:
            for _ in range(spec.fanout):
                table = _Table(f"t{counter}", parent.name, level)
                counter += 1
                tables.append(table)
                next_frontier.append(table)
        frontier = next_frontier
    return tuple(tables)


def _spine(spec: ScenarioSpec) -> tuple[str, ...]:
    """The root-to-leaf path every workload query joins (first child each level)."""
    tables = scenario_tables(spec)
    by_name = {t.name: t for t in tables}
    spine = [tables[0].name]
    while True:
        children = [t for t in tables if t.parent == spine[-1]]
        if not children:
            break
        spine.append(children[0].name)
    assert all(name in by_name for name in spine)
    return tuple(spine)


def _value_columns(spec: ScenarioSpec) -> list[tuple[str, str]]:
    """``(column name, kind)`` pairs shared by every table of the scenario."""
    columns: list[tuple[str, str]] = []
    columns.extend((f"i{k}", "int") for k in range(spec.int_columns))
    if spec.huge_ints:
        columns.append(("big0", "huge"))
    columns.extend((f"f{k}", "float") for k in range(spec.float_columns))
    columns.extend((f"s{k}", "str") for k in range(spec.str_columns))
    columns.extend((f"b{k}", "bool") for k in range(spec.bool_columns))
    return columns


def _planted_value(spec: ScenarioSpec, kind: str):
    lo, hi = spec.int_domain
    return {
        "int": (lo + hi) // 2,
        "huge": HUGE_BASE,
        "float": 0.5,
        "str": "cat_000",
        "bool": True,
    }[kind]


def _background_value(spec: ScenarioSpec, kind: str, rng: random.Random):
    lo, hi = spec.int_domain
    if kind == "int":
        return rng.randint(lo, hi)
    if kind == "huge":
        return HUGE_BASE + rng.randint(-HUGE_SPREAD, HUGE_SPREAD)
    if kind == "float":
        # A sprinkle of NULLs keeps the WHERE-clause NULL semantics honest
        # against the SQLite oracle; planted rows never carry NULL.
        if rng.random() < 0.03:
            return None
        return round(rng.random(), spec.float_digits)
    if kind == "str":
        return f"cat_{rng.randrange(spec.categories):03d}"
    if kind == "bool":
        return rng.random() < 0.5
    raise AssertionError(kind)  # pragma: no cover


def _row_count(spec: ScenarioSpec, level: int, scale: float) -> int:
    full = spec.root_rows * (spec.child_row_factor**level)
    return scaled_count(int(round(full)), scale, minimum=spec.planted_rows + 3)


def scenario_database(
    spec: ScenarioSpec, scale: float = 1.0, seed: int | None = None
) -> Database:
    """Build the scenario's database at *scale* (bit-reproducible per seed)."""
    tables = scenario_tables(spec)
    value_columns = _value_columns(spec)
    counts = {t.name: _row_count(spec, t.level, scale) for t in tables}

    built: dict[str, tuple[list[str], list[list]]] = {}
    foreign_keys: list[ForeignKey] = []
    primary_keys: dict[str, list[str]] = {}
    for table in tables:
        rng = rng_for(f"scenario/{spec.name}/table/{table.name}", seed)
        columns = ["id"]
        if table.parent is not None:
            columns.append("parent_id")
            foreign_keys.append(
                ForeignKey(table.name, ("parent_id",), table.parent, ("id",))
            )
        columns.extend(name for name, _ in value_columns)
        primary_keys[table.name] = ["id"]

        parent_count = counts[table.parent] if table.parent is not None else 0
        rows: list[list] = []
        for index in range(counts[table.name]):
            planted = index < spec.planted_rows
            row: list = [index]
            if table.parent is not None:
                # Planted children reference planted parents one-to-one so the
                # planted combination survives the spine join at every scale.
                row.append(index if planted else rng.randrange(parent_count))
            for _, kind in value_columns:
                row.append(
                    _planted_value(spec, kind) if planted else _background_value(spec, kind, rng)
                )
            rows.append(row)
        built[table.name] = (columns, rows)

    return Database.from_tables(built, foreign_keys=foreign_keys, primary_keys=primary_keys)


# ------------------------------------------------------------------- queries
#: (op, constant) choices for huge-int terms; every choice admits the planted
#: value 2^53, and the constants deliberately include 2^53 ± 1.
_HUGE_TERM_CHOICES = (
    (ComparisonOp.EQ, HUGE_BASE),
    (ComparisonOp.LE, HUGE_BASE),
    (ComparisonOp.LT, HUGE_BASE + 1),
    (ComparisonOp.GE, HUGE_BASE),
    (ComparisonOp.GE, HUGE_BASE - 1),
    (ComparisonOp.NE, HUGE_BASE + 1),
)


def _term_for(spec: ScenarioSpec, table: str, column: str, kind: str, rng: random.Random) -> Term:
    attribute = f"{table}.{column}"
    lo, hi = spec.int_domain
    mid = (lo + hi) // 2
    if kind == "int":
        if rng.random() < 0.5:
            return Term(attribute, ComparisonOp.LE, rng.randint(mid, hi))
        return Term(attribute, ComparisonOp.GE, rng.randint(lo, mid))
    if kind == "huge":
        op, constant = _HUGE_TERM_CHOICES[rng.randrange(len(_HUGE_TERM_CHOICES))]
        return Term(attribute, op, constant)
    if kind == "float":
        # Thresholds carry full float_digits precision: rendering them with
        # fewer significant digits (the old "{:g}" bug) visibly shifts the
        # selected row set. 0.5 (the planted value) always satisfies.
        span = max(min(spec.selectivity, 0.45), 0.05)
        if rng.random() < 0.5:
            constant = round(rng.uniform(0.5, 0.5 + span), spec.float_digits)
            return Term(attribute, ComparisonOp.LE, constant)
        constant = round(rng.uniform(0.5 - span, 0.5), spec.float_digits)
        return Term(attribute, ComparisonOp.GE, constant)
    if kind == "str":
        if rng.random() < 0.4:
            other = f"cat_{rng.randrange(spec.categories):03d}"
            return Term(attribute, ComparisonOp.IN, ("cat_000", other))
        return Term(attribute, ComparisonOp.EQ, "cat_000")
    if kind == "bool":
        return Term(attribute, ComparisonOp.EQ, True)
    raise AssertionError(kind)  # pragma: no cover


def scenario_queries(spec: ScenarioSpec, seed: int | None = None) -> tuple[SPJQuery, ...]:
    """The scenario's workload queries (scale-invariant; ``[0]`` is the target).

    All queries share the spine tables and projection — the shape of a QFE
    candidate set — and differ only in their DNF predicates, every one of
    which admits the planted rows.
    """
    rng = rng_for(f"scenario/{spec.name}/queries", seed)
    spine = _spine(spec)
    value_columns = _value_columns(spec)
    projection = [f"{spine[0]}.id"]
    projection.extend(f"{table}.{value_columns[0][0]}" for table in spine)

    term_slots = [
        (table, column, kind) for table in spine for column, kind in value_columns
    ]

    def one_conjunct() -> Conjunct:
        count = 1 + rng.randrange(spec.max_terms)
        chosen: dict[str, Term] = {}
        for _ in range(count):
            table, column, kind = term_slots[rng.randrange(len(term_slots))]
            term = _term_for(spec, table, column, kind, rng)
            chosen.setdefault(term.attribute + term.op.value, term)
        return Conjunct(tuple(chosen.values()))

    queries: list[SPJQuery] = []
    seen: set[DNFPredicate] = set()
    attempts = 0
    while len(queries) < spec.query_count and attempts < spec.query_count * 40:
        attempts += 1
        conjuncts = [one_conjunct()]
        # Some queries get a second (also planted-satisfying) disjunct so the
        # workload exercises real DNF, not just conjunctions.
        if len(queries) % 3 == 1:
            conjuncts.append(one_conjunct())
        predicate = DNFPredicate(tuple(conjuncts))
        if predicate in seen or predicate.is_true:
            continue
        seen.add(predicate)
        queries.append(SPJQuery(list(spine), list(projection), predicate))
    if len(queries) < spec.query_count:
        # A spec whose predicate space is too small to yield query_count
        # distinct predicates (e.g. a single boolean column) must fail
        # loudly: the sweep records — and its consumers assert — the spec's
        # promised workload size.
        raise ValueError(
            f"scenario {spec.name!r} could only generate {len(queries)} of "
            f"{spec.query_count} distinct queries; enlarge the attribute mix "
            f"or lower query_count"
        )
    return tuple(queries)


@dataclass(frozen=True)
class GeneratedScenario:
    """One generated scenario instance: a database plus its workload queries."""

    spec: ScenarioSpec
    seed: int | None
    scale: float
    database: Database
    queries: tuple[SPJQuery, ...]

    @property
    def target(self) -> SPJQuery:
        """The workload's target query (the one a simulated user 'wants')."""
        return self.queries[0]

    @property
    def total_rows(self) -> int:
        """Total tuples across all tables at this scale."""
        return self.database.total_tuples()

    def rows_by_table(self) -> dict[str, int]:
        """Per-table row counts (for reports and trajectories)."""
        return {name: len(self.database.relation(name)) for name in self.database.table_names}


def generate_scenario(
    spec: ScenarioSpec, scale: float = 1.0, seed: int | None = None
) -> GeneratedScenario:
    """Generate the scenario's database and queries at *scale*."""
    return GeneratedScenario(
        spec=spec,
        seed=seed,
        scale=scale,
        database=scenario_database(spec, scale, seed),
        queries=scenario_queries(spec, seed),
    )
