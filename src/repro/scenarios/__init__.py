"""Scenario engine: parameterized synthetic QFE scenarios at any scale.

The paper evaluates QFE on six fixed workloads (Q1–Q6). The scenario engine
turns the repo into a system that can *fabricate* arbitrarily many QFE
scenarios — a schema shape (foreign-key tree depth/fanout), an
attribute-domain mix (ints, precision-heavy floats, ≥ 2^53 integers,
categorical strings, booleans), a selectivity profile and a scale factor —
deterministically from a seed, and measure them end to end:

* :mod:`repro.scenarios.spec` — the :class:`ScenarioSpec` knobs;
* :mod:`repro.scenarios.generator` — ``(spec, scale, seed)`` →
  ``(Database, workload queries)``, bit-reproducible, with scale-invariant
  queries and planted rows so every query has a non-empty result at every
  scale;
* :mod:`repro.scenarios.catalog` — named presets (``chain``, ``star``,
  ``mixed``) and the ``scenario:<preset>[@seed]`` workload-name bridge that
  lets the experiments runner and the session service treat a generated
  scenario exactly like a paper workload (including checkpoint/resume by
  reference);
* :mod:`repro.scenarios.sweep` — the scale sweep: per (scenario, scale) it
  cross-checks every generated query against the SQLite oracle, runs full
  QFE sessions on the serial and process-pool backends, asserts the
  canonical transcripts are bit-identical, times the cold vs delta-derived
  candidate-evaluation paths, and records the whole per-scale trajectory
  into ``benchmarks/BENCH_scenarios.json``.
"""

from repro.scenarios.catalog import (
    SCENARIOS,
    get_scenario,
    parse_scenario_name,
    scenario_names,
    scenario_workload,
)
from repro.scenarios.generator import GeneratedScenario, generate_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.sweep import DEFAULT_BENCH_PATH, run_sweep, sweep_table

__all__ = [
    "ScenarioSpec",
    "GeneratedScenario",
    "generate_scenario",
    "SCENARIOS",
    "scenario_names",
    "get_scenario",
    "parse_scenario_name",
    "scenario_workload",
    "run_sweep",
    "sweep_table",
    "DEFAULT_BENCH_PATH",
]
