"""The scenario scale sweep: generate → verify → run → measure → record.

For every requested ``(scenario, scale)`` the sweep

1. **generates** the database and its scale-invariant workload queries;
2. **verifies** every query against the SQLite differential oracle (the
   pure-Python evaluator and an independent SQL engine must agree on every
   result, bag-exactly — this is where numeric/type-semantics bugs detonate);
3. **runs** one full QFE session per execution backend — serial, a shared
   **warm persistent worker pool** (when ``workers >= 2``: one cold session
   plus repeats that hit worker-resident plan caches, recording both the
   cold and the steady-state wall-clock), and the SQL-pushdown backend —
   and demands every canonical transcript be **bit-identical** to the
   serial oracle (the PR-3/PR-4 differential contract, extended to every
   generated scenario and every backend);
4. **measures** the cold vs delta-derived candidate-evaluation paths over
   the same candidate set, plus the storage layer itself: bytes per joined
   row under the typed columnar layout vs the object-tuple reference layout,
   tracemalloc peak while building the typed view, and the time to build a
   selective term mask on each layout (the zone-map/sorted-index fast path
   vs the full compiled scan);
5. **records** the whole per-scale trajectory — row counts, join size,
   session rounds, per-backend seconds with a ``fastest_backend`` pick,
   cold/delta seconds, memory figures, transcript hash — into
   ``benchmarks/BENCH_scenarios.json``.

Scales 10–100× are in scope for the storage figures: the typed layout keeps
millions of joined rows resident at a few dozen bytes per row, which is what
makes ``--scales 10,100`` sessions routine on one machine.

A transcript divergence or an oracle disagreement raises
:class:`ScenarioDivergenceError`: the sweep is a verification harness first
and a benchmark second.
"""

from __future__ import annotations

import hashlib
import json
import os
import tracemalloc
from pathlib import Path
from typing import Sequence

from repro.core.config import QFEConfig
from repro.core.execution_backend import BACKEND_STATS, SqlPushdownBackend
from repro.core.timing import Stopwatch
from repro.exceptions import EvaluationError
from repro.qbo.mutation import expand_candidate_set
from repro.relational.columnar import ColumnarView, ColumnarViewReference
from repro.relational.delta import TupleDelta
from repro.relational.predicates import ComparisonOp, Term
from repro.relational.evaluator import JoinCache, SharedSnapshotCache, evaluate_batch
from repro.relational.join import foreign_key_join
from repro.relational.types import AttributeType
from repro.scenarios.catalog import SCENARIOS, get_scenario
from repro.scenarios.generator import GeneratedScenario, generate_scenario
from repro.sql.sqlite_backend import SQLiteBackend

__all__ = [
    "ScenarioDivergenceError",
    "run_sweep",
    "sweep_table",
    "DEFAULT_BENCH_PATH",
]

#: Default output location, resolved against the working directory (the CLI
#: and CI run from the repository root).
DEFAULT_BENCH_PATH = Path("benchmarks") / "BENCH_scenarios.json"

#: A generous Algorithm-3 budget: wall-clock truncation of the skyline
#: enumeration is the one legitimately nondeterministic input, and it is
#: orthogonal to everything the sweep verifies.
_SWEEP_CONFIG = QFEConfig(delta_seconds=30.0)


class ScenarioDivergenceError(EvaluationError):
    """Two engines (or two backends) disagreed on a generated scenario."""


def _point_setup(
    generated: GeneratedScenario, candidate_count: int, *, verify_oracle: bool
):
    """One sweep point's shared state: join, oracle check, R, candidates.

    Every workload query shares the spine tables, so the foreign-key join is
    materialized **once** (through a :class:`JoinCache`, whose warm entry the
    mutant verification inside :func:`expand_candidate_set` then reuses) and
    all queries are evaluated over it in one batch — instead of paying one
    cold join per query per check.

    Returns ``(result, candidates, joined, oracle_checked or None)``.
    """
    database = generated.database
    cache = JoinCache()
    joined = cache.join_for(database, tuple(generated.target.tables))
    batch = evaluate_batch(
        list(generated.queries), joined, database, with_fingerprints=False, name="R"
    )
    oracle_checked = None
    if verify_oracle:
        with SQLiteBackend(database) as backend:
            for query, ours in zip(generated.queries, batch.results):
                theirs = backend.execute(query)
                if not ours.bag_equal(theirs):
                    raise ScenarioDivergenceError(
                        f"scenario {generated.spec.name!r} @ scale {generated.scale}: "
                        f"evaluator and SQLite disagree on {query}"
                    )
        oracle_checked = len(generated.queries)
    result = batch.results[0]  # the target's result, R
    candidates = expand_candidate_set(
        database, result, list(generated.queries), candidate_count, join_cache=cache
    )
    return result, candidates, joined, oracle_checked


def _candidates_for(generated: GeneratedScenario, candidate_count: int):
    """The session's candidate set: the workload queries padded with mutants."""
    result, candidates, _, _ = _point_setup(
        generated, candidate_count, verify_oracle=False
    )
    return result, candidates


def _numeric_patch_column(relation):
    for attribute in relation.schema.attributes:
        if attribute.name in ("id", "parent_id"):
            continue
        if attribute.type in (AttributeType.INTEGER, AttributeType.FLOAT):
            return attribute.name
    return None


def _measure_eval_paths(generated: GeneratedScenario, candidates, joined) -> dict:
    """Time cold-rebuild vs delta-derived candidate evaluation (one pass each).

    Mirrors the ``delta-derive`` component benchmark at scenario scale: the
    cold path pays a fresh foreign-key join, columnar view and every term
    mask; the delta path patches the (already-materialized) warm base join
    through a two-tuple update :class:`TupleDelta` and shares untouched
    columns and masks.
    """
    database = generated.database
    tables = tuple(generated.target.tables)
    joined.columnar()
    evaluate_batch(candidates, joined, database)  # warm masks, as a session would

    derived_db = database.copy()
    root = tables[0]
    relation = derived_db.relation(root)
    column = _numeric_patch_column(relation)
    delta = TupleDelta()
    if column is not None:
        index = relation.schema.index_of(column)
        for target in relation.tuples[: min(2, len(relation))]:
            values = list(target.values)
            values[index] = (values[index] or 0) + 1
            relation.replace_tuple(target.tuple_id, values)
            delta.record_update(root, target.tuple_id, relation.tuple_by_id(target.tuple_id).values)

    watch = Stopwatch()
    cold_joined = foreign_key_join(derived_db, tables)
    evaluate_batch(candidates, cold_joined, derived_db, columnar=ColumnarView(cold_joined.relation))
    cold_seconds = watch.restart()

    derived = joined.apply_delta(delta, database)
    evaluate_batch(candidates, derived, derived_db)
    delta_seconds = watch.elapsed()
    return {
        "cold_eval_seconds": cold_seconds,
        "delta_eval_seconds": delta_seconds,
        "delta_eval_speedup": (cold_seconds / delta_seconds) if delta_seconds > 0 else None,
        "join_rows": len(joined),
    }


def _selective_terms(relation) -> tuple[Term, Term] | None:
    """Two distinct selective equality terms on an id column of the join.

    Spine id values are (near-)unique per base row, so an equality term
    selects only the join fanout of one tuple — the selective case the
    sorted term index exists for. Two distinct constants are needed because
    the first term also pays the lazy index build (reported separately).
    """
    for name in relation.schema.attribute_names:
        if not name.endswith(".id"):
            continue
        values = relation.column(name)
        first = values[len(values) // 3]
        second = values[(2 * len(values)) // 3]
        if first is None or second is None or first == second:
            continue
        return (
            Term(name, ComparisonOp.EQ, first),
            Term(name, ComparisonOp.EQ, second),
        )
    return None


def _measure_storage(generated: GeneratedScenario, joined) -> dict:
    """Quantify the typed columnar layout against the object-tuple reference.

    Builds both views over the same joined relation and records bytes per
    joined row for each, the tracemalloc peak while constructing (and first
    querying) the typed view, and the time to build one selective term mask
    per layout — cold (typed pays the lazy sorted-index build) and warm
    (index in place). The masks themselves are compared bit-for-bit: the
    sweep stays a verification harness first.
    """
    relation = joined.relation
    measurements: dict = {}
    terms = _selective_terms(relation)
    watch = Stopwatch()

    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    watch.restart()
    typed_view = ColumnarView(relation)
    measurements["typed_view_build_seconds"] = watch.restart()
    typed_masks = None
    if terms is not None:
        cold_term, warm_term = terms
        watch.restart()
        cold_mask = typed_view.term_mask(cold_term)  # pays the index build
        measurements["term_mask_selective_cold_seconds_typed"] = watch.restart()
        warm_mask = typed_view.term_mask(warm_term)
        measurements["term_mask_selective_seconds_typed"] = watch.restart()
        typed_masks = (cold_mask, warm_mask)
    typed_report = typed_view.memory_report()
    if not already_tracing:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        measurements["typed_peak_tracemalloc_bytes"] = peak

    watch.restart()
    reference_view = ColumnarViewReference(relation)
    measurements["object_view_build_seconds"] = watch.restart()
    if terms is not None and typed_masks is not None:
        cold_term, warm_term = terms
        watch.restart()
        reference_cold = reference_view.term_mask(cold_term)
        measurements["term_mask_selective_cold_seconds_object"] = watch.restart()
        reference_warm = reference_view.term_mask(warm_term)
        measurements["term_mask_selective_seconds_object"] = watch.restart()
        if typed_masks != (reference_cold, reference_warm):
            raise ScenarioDivergenceError(
                f"scenario {generated.spec.name!r} @ scale {generated.scale}: typed "
                f"and object-layout term masks diverged on {terms[0].attribute}"
            )
        object_seconds = measurements["term_mask_selective_seconds_object"]
        typed_seconds = measurements["term_mask_selective_seconds_typed"]
        measurements["term_mask_selective_speedup"] = (
            object_seconds / typed_seconds if typed_seconds > 0 else None
        )
    reference_report = reference_view.memory_report()

    typed_bytes = typed_report["bytes_per_row"]
    object_bytes = reference_report["bytes_per_row"]
    measurements["bytes_per_joined_row_typed"] = typed_bytes
    measurements["bytes_per_joined_row_object"] = object_bytes
    measurements["storage_reduction"] = (
        object_bytes / typed_bytes if typed_bytes > 0 else None
    )
    return measurements


def _session_point(
    generated,
    result,
    candidates,
    *,
    workers,
    backend,
    workload_name,
    join_cache=None,
    snapshot_cache=None,
):
    """Run one session; returns (wall seconds, canonical transcript JSON, run,
    per-phase seconds).

    Each point runs under a private in-memory tracer (the previous tracer is
    restored afterwards), so the recorded trajectory can attribute every
    backend's wall-clock to prepare/ship/evaluate/merge phases — tracing does
    not perturb transcripts, which the sweep's own bit-identity checks
    enforce on every point. ``join_cache``/``snapshot_cache`` let the warm
    leg share base state across its repeated sessions, the way the session
    service does.
    """
    from repro.experiments.runner import run_session
    from repro.obs.summary import aggregate_phases
    from repro.obs.trace import Tracer, set_tracer
    from repro.service.checkpoint import transcript_json

    watch = Stopwatch()
    spans: list = []
    previous = set_tracer(Tracer(spans))
    try:
        run = run_session(
            generated.database,
            result,
            generated.target,
            candidates=candidates,
            config=_SWEEP_CONFIG,
            feedback="worst",
            workload_name=workload_name,
            scale=generated.scale,
            workers=workers,
            backend=backend,
            join_cache=join_cache,
            snapshot_cache=snapshot_cache,
            capture_transcript=True,
        )
    finally:
        set_tracer(previous)
    seconds = watch.elapsed()
    return seconds, transcript_json(run.transcript), run, aggregate_phases(spans)


def run_sweep(
    scenarios: Sequence[str] | None = None,
    scales: Sequence[float] = (0.1, 0.5, 1.0),
    *,
    seed: int | None = None,
    workers: int = 2,
    candidate_count: int = 8,
    verify_oracle: bool = True,
    measure_eval_paths: bool = True,
    measure_storage: bool = True,
    out_path: str | os.PathLike | None = DEFAULT_BENCH_PATH,
) -> dict:
    """Sweep the named scenarios (default: the full catalog) across *scales*.

    Returns the trajectory payload; also writes it as JSON to *out_path*
    unless that is ``None``. ``workers >= 2`` runs the warm-pool leg of
    every point over **one shared persistent worker pool** (spin-up paid
    once, as a service would): the first session on a point is recorded as
    ``pooled_cold_seconds`` (base install + round plans all cold), then the
    session repeats with the same shared join/snapshot caches and the best
    repeat is ``pooled_seconds`` — the steady-state a warm service reaches
    when a user re-runs a pair the pool has already planned, which is where
    worker-resident plan caches and content-hashed round bodies pay off.
    Every warm transcript (cold and steady) must be bit-identical to the
    serial oracle. ``workers`` of 0/1 skips the warm leg. The SQL-pushdown
    leg always runs (one shared backend, mirror reloaded per point), so
    every point records per-backend timings and a ``fastest_backend`` pick.
    """
    names = list(scenarios) if scenarios else sorted(SCENARIOS)
    specs = [get_scenario(name) for name in names]
    scales = [float(s) for s in scales]

    pool = None
    if workers >= 2:
        from repro.core.worker_runtime import WarmProcessPoolBackend

        pool = WarmProcessPoolBackend(workers)
    # One SQL-pushdown backend shared across every point, like the pool: its
    # mirror reloads automatically when a point hands it a new base database
    # (snapshot identity is the invalidation signal).
    sql = SqlPushdownBackend()
    payload: dict = {
        "seed": seed,
        "workers": workers,
        "scales": scales,
        "candidate_count": candidate_count,
        "scenarios": {},
    }
    try:
        for spec in specs:
            trajectory = []
            for scale in scales:
                generated = generate_scenario(spec, scale, seed)
                workload_name = f"scenario:{spec.name}" + (
                    f"@{seed}" if seed is not None else ""
                )
                point: dict = {
                    "scale": scale,
                    "rows_by_table": generated.rows_by_table(),
                    "total_rows": generated.total_rows,
                    "query_count": len(generated.queries),
                }
                result, candidates, joined, oracle_checked = _point_setup(
                    generated, candidate_count, verify_oracle=verify_oracle
                )
                if oracle_checked is not None:
                    point["oracle_checked_queries"] = oracle_checked
                point["result_rows"] = len(result)
                point["candidates"] = len(candidates)

                serial_seconds, serial_json, serial_run, serial_phases = _session_point(
                    generated, result, candidates,
                    workers=0, backend=None, workload_name=workload_name,
                )
                phase_seconds = {"serial": serial_phases}
                point["iterations"] = serial_run.iteration_count
                point["converged"] = serial_run.session.converged
                point["serial_seconds"] = serial_seconds
                point["transcript_sha256"] = hashlib.sha256(
                    serial_json.encode("utf-8")
                ).hexdigest()

                if pool is not None:
                    # The warm leg shares one join cache and one snapshot
                    # cache across its sessions on this point, exactly as the
                    # session service shares a pair's base state: the first
                    # session pays the install and every round plan cold, the
                    # repeats hit worker-resident plan caches (warm_hits) and
                    # ship content hashes instead of round bodies.
                    warm_join_cache = JoinCache()
                    warm_snapshots = SharedSnapshotCache()
                    stats_before = {
                        field: getattr(BACKEND_STATS, field)
                        for field in ("bytes_shipped", "warm_hits")
                    }
                    warm_rounds = 0
                    cold_seconds, cold_json, cold_run, _ = _session_point(
                        generated, result, candidates,
                        workers=None, backend=pool, workload_name=workload_name,
                        join_cache=warm_join_cache, snapshot_cache=warm_snapshots,
                    )
                    warm_rounds += cold_run.iteration_count
                    if cold_json != serial_json:
                        raise ScenarioDivergenceError(
                            f"scenario {spec.name!r} @ scale {scale}: warm-pool "
                            f"transcript diverged from the serial oracle "
                            f"({workers} workers, cold)"
                        )
                    pooled_seconds = None
                    pooled_phases = None
                    for _ in range(2):
                        repeat_seconds, repeat_json, repeat_run, repeat_phases = (
                            _session_point(
                                generated, result, candidates,
                                workers=None, backend=pool,
                                workload_name=workload_name,
                                join_cache=warm_join_cache,
                                snapshot_cache=warm_snapshots,
                            )
                        )
                        warm_rounds += repeat_run.iteration_count
                        if repeat_json != serial_json:
                            raise ScenarioDivergenceError(
                                f"scenario {spec.name!r} @ scale {scale}: warm-pool "
                                f"transcript diverged from the serial oracle "
                                f"({workers} workers, steady-state)"
                            )
                        if pooled_seconds is None or repeat_seconds < pooled_seconds:
                            pooled_seconds, pooled_phases = repeat_seconds, repeat_phases
                    phase_seconds["warm"] = pooled_phases
                    point["pooled_cold_seconds"] = cold_seconds
                    point["pooled_seconds"] = pooled_seconds
                    point["pooled_workers"] = workers
                    point["pooled_speedup"] = (
                        serial_seconds / pooled_seconds if pooled_seconds > 0 else None
                    )
                    point["warm_hits"] = BACKEND_STATS.warm_hits - stats_before["warm_hits"]
                    point["bytes_shipped_per_round"] = (
                        (BACKEND_STATS.bytes_shipped - stats_before["bytes_shipped"])
                        / warm_rounds
                        if warm_rounds
                        else None
                    )

                sql_seconds, sql_json, _, sql_phases = _session_point(
                    generated, result, candidates,
                    workers=None, backend=sql, workload_name=workload_name,
                )
                phase_seconds["sql"] = sql_phases
                if sql_json != serial_json:
                    raise ScenarioDivergenceError(
                        f"scenario {spec.name!r} @ scale {scale}: sql-pushdown "
                        f"transcript diverged from the serial oracle"
                    )
                point["sql_seconds"] = sql_seconds
                point["sql_speedup"] = (
                    serial_seconds / sql_seconds if sql_seconds > 0 else None
                )
                point["transcripts_identical"] = True
                backend_seconds = {"serial": serial_seconds, "sql": sql_seconds}
                if "pooled_seconds" in point:
                    # Steady-state: the honest service-shaped figure for a
                    # persistent pool (its cold first session sits alongside
                    # in ``pooled_cold_seconds``).
                    backend_seconds["warm"] = point["pooled_seconds"]
                point["backend_seconds"] = backend_seconds
                point["fastest_backend"] = min(backend_seconds, key=backend_seconds.get)
                # Per-backend phase attribution (prepare/ship/evaluate/merge/
                # materialize/present/other seconds) — the *why* behind
                # fastest_backend in the recorded trajectory.
                point["phase_seconds"] = phase_seconds

                if measure_eval_paths:
                    point.update(_measure_eval_paths(generated, candidates, joined))
                if measure_storage:
                    point.update(_measure_storage(generated, joined))
                trajectory.append(point)
            payload["scenarios"][spec.name] = {
                "spec": spec.to_json(),
                "trajectory": trajectory,
            }
    finally:
        if pool is not None:
            pool.close()
        sql.close()

    if out_path is not None:
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return payload


def sweep_table(payload: dict):
    """Render a sweep payload as an :class:`ExperimentTable` for the CLI."""
    from repro.experiments.report import ExperimentTable

    table = ExperimentTable(
        title="Scenario scale sweep",
        columns=[
            "scenario", "scale", "rows", "join rows", "|R|", "cands", "iters",
            "serial s", "warm s", "warm cold s", "warm hits", "sql s", "fastest",
            "cold s", "delta s", "B/row", "mem x", "identical",
        ],
        caption=(
            "Per-scale trajectory of generated scenarios: full QFE sessions on the "
            "serial, warm-pool and sql-pushdown backends (canonical transcripts "
            "bit-identical; 'warm s' is the steady-state repeat on a persistent "
            "pool, 'warm cold s' its first session), plus cold vs delta-derived "
            "candidate evaluation and typed-vs-object storage bytes per joined row."
        ),
    )
    for name, entry in sorted(payload["scenarios"].items()):
        for point in entry["trajectory"]:
            table.add_row(
                name,
                point["scale"],
                point["total_rows"],
                point.get("join_rows", "-"),
                point["result_rows"],
                point["candidates"],
                point["iterations"],
                round(point["serial_seconds"], 4),
                round(point["pooled_seconds"], 4) if "pooled_seconds" in point else "-",
                round(point["pooled_cold_seconds"], 4)
                if "pooled_cold_seconds" in point else "-",
                point.get("warm_hits", "-"),
                round(point["sql_seconds"], 4) if "sql_seconds" in point else "-",
                point.get("fastest_backend", "-"),
                round(point["cold_eval_seconds"], 4) if "cold_eval_seconds" in point else "-",
                round(point["delta_eval_seconds"], 4) if "delta_eval_seconds" in point else "-",
                round(point["bytes_per_joined_row_typed"], 1)
                if "bytes_per_joined_row_typed" in point else "-",
                round(point["storage_reduction"], 2)
                if point.get("storage_reduction") else "-",
                point.get("transcripts_identical", "-"),
            )
    return table
