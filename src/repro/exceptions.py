"""Exception hierarchy for the QFE reproduction library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class. Sub-hierarchies mirror the package layout:
relational-engine errors, SQL-layer errors, query-generation errors and
QFE-session errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SchemaError(ReproError):
    """Raised when a schema definition or schema lookup is invalid."""


class TypeMismatchError(SchemaError):
    """Raised when a value does not conform to the declared attribute type."""


class ConstraintViolation(ReproError):
    """Raised when a database instance violates a declared integrity constraint."""


class PrimaryKeyViolation(ConstraintViolation):
    """Raised when two tuples share a primary-key value."""


class ForeignKeyViolation(ConstraintViolation):
    """Raised when a non-null foreign-key value has no referenced primary key."""


class EvaluationError(ReproError):
    """Raised when a query cannot be evaluated on a database."""


class UnsupportedQueryError(EvaluationError):
    """Raised when a query uses features outside the supported SPJ/SPJU subset."""


class SQLSyntaxError(ReproError):
    """Raised when SQL text cannot be parsed into the supported SPJ subset."""


class QueryGenerationError(ReproError):
    """Raised when the QBO-style query generator cannot produce candidates."""


class NoCandidateQueriesError(QueryGenerationError):
    """Raised when no candidate query is consistent with the (D, R) pair."""


class QFESessionError(ReproError):
    """Raised when the QFE interaction loop is driven incorrectly."""


class FeedbackError(QFESessionError):
    """Raised when user feedback references a result that was not presented."""


class DatabaseGenerationError(ReproError):
    """Raised when no distinguishing modified database can be produced."""


class ServiceError(ReproError):
    """Raised when the session service layer is driven incorrectly."""


class CheckpointError(ServiceError):
    """Raised when a session checkpoint cannot be serialized or restored."""


class SessionNotFound(ServiceError):
    """Raised when a session id matches neither a live session nor a checkpoint."""
