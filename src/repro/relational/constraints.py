"""Integrity-constraint checking (Section 6.3).

QFE-generated modified databases must stay *valid*: primary-key values must
remain unique and non-null foreign-key values must keep referencing existing
parent rows. The Database Generator calls :func:`validate_database` (or the
narrower :func:`modification_is_valid`) before accepting a materialized
modification; the checks are also exposed publicly so datasets and examples
can assert their own consistency.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ForeignKeyViolation, PrimaryKeyViolation
from repro.relational.database import Database
from repro.relational.schema import ForeignKey

__all__ = [
    "check_primary_keys",
    "check_foreign_keys",
    "validate_database",
    "constraint_violations",
    "modification_is_valid",
]


def _normalize(value: Any) -> Any:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return value


def check_primary_keys(database: Database) -> list[str]:
    """Return a violation message per duplicated or NULL primary-key value."""
    violations: list[str] = []
    for table_name, relation in database.relations.items():
        primary_key = relation.schema.primary_key
        if not primary_key:
            continue
        positions = [relation.schema.index_of(column) for column in primary_key]
        seen: dict[tuple, int] = {}
        for row in relation.tuples:
            key = tuple(_normalize(row.values[p]) for p in positions)
            if any(part is None for part in key):
                violations.append(
                    f"{table_name}: NULL in primary key {primary_key} for row {row.values!r}"
                )
                continue
            if key in seen:
                violations.append(
                    f"{table_name}: duplicate primary key {key!r} (rows {seen[key]} and {row.tuple_id})"
                )
            else:
                seen[key] = row.tuple_id
    return violations


def check_foreign_keys(database: Database) -> list[str]:
    """Return a violation message per dangling non-null foreign-key value."""
    violations: list[str] = []
    for fk in database.schema.foreign_keys:
        violations.extend(_check_one_foreign_key(database, fk))
    return violations


def _check_one_foreign_key(database: Database, fk: ForeignKey) -> list[str]:
    child = database.relation(fk.child_table)
    parent = database.relation(fk.parent_table)
    child_positions = [child.schema.index_of(c) for c in fk.child_columns]
    parent_positions = [parent.schema.index_of(c) for c in fk.parent_columns]
    parent_keys = {
        tuple(_normalize(row.values[p]) for p in parent_positions) for row in parent.tuples
    }
    violations = []
    for row in child.tuples:
        key = tuple(_normalize(row.values[p]) for p in child_positions)
        if any(part is None for part in key):
            continue  # NULL foreign keys are allowed
        if key not in parent_keys:
            violations.append(
                f"{fk.name}: child row {row.values!r} references missing parent key {key!r}"
            )
    return violations


def constraint_violations(database: Database) -> list[str]:
    """All primary-key and foreign-key violations in the database."""
    return check_primary_keys(database) + check_foreign_keys(database)


def validate_database(database: Database) -> None:
    """Raise on the first integrity violation (primary keys first, then foreign keys)."""
    pk_violations = check_primary_keys(database)
    if pk_violations:
        raise PrimaryKeyViolation(pk_violations[0])
    fk_violations = check_foreign_keys(database)
    if fk_violations:
        raise ForeignKeyViolation(fk_violations[0])


def modification_is_valid(database: Database) -> bool:
    """Whether the database satisfies all declared integrity constraints."""
    return not constraint_violations(database)
