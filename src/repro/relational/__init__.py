"""In-memory relational engine: the substrate QFE runs on.

This package implements everything the QFE algorithms assume from an RDBMS:
typed schemas with primary/foreign keys, bag-semantics relations, foreign-key
joins with join indexes and provenance, SPJ/SPJU query evaluation, the Section
3 edit model (``minEdit``), delta presentation and integrity-constraint
checking.
"""

from repro.relational.columnar import COLUMNAR_STATS, ColumnarView, ColumnarViewReference
from repro.relational.database import Database
from repro.relational.delta import (
    DatabaseDelta,
    ResultDelta,
    TupleDelta,
    database_delta,
    delta_from_edit_script,
    result_delta,
)
from repro.relational.edit import (
    EditKind,
    EditOperation,
    EditScript,
    min_edit_database,
    min_edit_relation,
    min_edit_script,
    tuple_distance,
)
from repro.relational.evaluator import (
    BatchEvaluation,
    JoinCache,
    evaluate,
    evaluate_batch,
    evaluate_on_join,
    evaluate_on_join_reference,
    results_equal,
)
from repro.relational.join import JOIN_STATS, JoinedRelation, foreign_key_join, full_join
from repro.relational.predicates import (
    ComparisonOp,
    Conjunct,
    DNFPredicate,
    Term,
    always_true,
    compile_predicate,
    compile_term,
)
from repro.relational.query import SPJQuery, SPJUQuery
from repro.relational.relation import Relation, Tuple
from repro.relational.schema import Attribute, DatabaseSchema, ForeignKey, TableSchema, qualify
from repro.relational.types import AttributeType

__all__ = [
    "AttributeType",
    "Attribute",
    "TableSchema",
    "ForeignKey",
    "DatabaseSchema",
    "qualify",
    "Tuple",
    "Relation",
    "Database",
    "ComparisonOp",
    "Term",
    "Conjunct",
    "DNFPredicate",
    "always_true",
    "SPJQuery",
    "SPJUQuery",
    "compile_term",
    "compile_predicate",
    "ColumnarView",
    "ColumnarViewReference",
    "COLUMNAR_STATS",
    "evaluate",
    "evaluate_on_join",
    "evaluate_on_join_reference",
    "evaluate_batch",
    "BatchEvaluation",
    "results_equal",
    "JoinCache",
    "JoinedRelation",
    "JOIN_STATS",
    "foreign_key_join",
    "full_join",
    "EditKind",
    "EditOperation",
    "EditScript",
    "tuple_distance",
    "min_edit_relation",
    "min_edit_script",
    "min_edit_database",
    "DatabaseDelta",
    "ResultDelta",
    "TupleDelta",
    "database_delta",
    "delta_from_edit_script",
    "result_delta",
]
