"""Delta presentation: the ``Δ(D, R_i)`` views shown to the user.

Section 2 of the paper: instead of presenting the entire modified database
``D'`` and the candidate results ``R_1..R_k``, the Result Feedback module
presents their *differences* from the original pair ``(D, R)``. This module
builds those differences as structured objects (so programmatic users and the
simulated-user harness can inspect them) and as readable text blocks (so the
interactive example scripts can print exactly what a user would see).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.database import Database
from repro.relational.edit import EditScript, min_edit_script, modified_relation_names
from repro.relational.relation import Relation

__all__ = ["RelationDelta", "DatabaseDelta", "ResultDelta", "database_delta", "result_delta"]


@dataclass(frozen=True)
class RelationDelta:
    """The edit script from one relation instance to another."""

    relation_name: str
    script: EditScript

    @property
    def cost(self) -> int:
        """The minimum edit cost between the two instances."""
        return self.script.cost

    def describe(self) -> list[str]:
        """One line per edit operation."""
        return self.script.describe()


@dataclass(frozen=True)
class DatabaseDelta:
    """The differences ``Δ(D, D')`` between the original and a modified database."""

    relation_deltas: tuple[RelationDelta, ...]

    @property
    def cost(self) -> int:
        """``minEdit(D, D')``: total edit cost over all modified relations."""
        return sum(delta.cost for delta in self.relation_deltas)

    @property
    def modified_relation_count(self) -> int:
        """The ``n`` of Equation (3): how many relations were modified."""
        return len(self.relation_deltas)

    @property
    def modified_tuple_count(self) -> int:
        """The ``µ`` of Section 3: number of distinct modified/inserted/deleted tuples."""
        total = 0
        for delta in self.relation_deltas:
            rows = set()
            for op in delta.script.operations:
                rows.add((op.kind, op.source_row if op.source_row is not None else op.target_row))
            total += len(rows)
        return total

    def describe(self) -> list[str]:
        """Readable lines describing every change, grouped by relation."""
        lines: list[str] = []
        for delta in self.relation_deltas:
            lines.extend(delta.describe())
        if not lines:
            lines.append("(no database changes)")
        return lines

    def pretty(self) -> str:
        """A text block of the database changes."""
        return "\n".join(self.describe())


@dataclass(frozen=True)
class ResultDelta:
    """The differences ``Δ(R, R_i)`` between the original result and a candidate result."""

    script: EditScript

    @property
    def cost(self) -> int:
        """``minEdit(R, R_i)``."""
        return self.script.cost

    def describe(self) -> list[str]:
        """Readable lines describing the result changes."""
        lines = self.script.describe()
        if not lines:
            lines.append("(result unchanged)")
        return lines

    def pretty(self) -> str:
        """A text block of the result changes."""
        return "\n".join(self.describe())


def database_delta(original: Database, modified: Database) -> DatabaseDelta:
    """Compute ``Δ(D, D')`` as per-relation minimum edit scripts."""
    deltas = []
    for name in modified_relation_names(original, modified):
        script = min_edit_script(original.relation(name), modified.relation(name))
        deltas.append(RelationDelta(name, script))
    return DatabaseDelta(tuple(deltas))


def result_delta(original: Relation, candidate: Relation) -> ResultDelta:
    """Compute ``Δ(R, R_i)`` as a minimum edit script between result instances."""
    return ResultDelta(min_edit_script(original, candidate))
