"""Database deltas: presentation diffs and the structured ``TupleDelta``.

Two kinds of delta live here:

* the *presentation* deltas of Section 2 — instead of presenting the entire
  modified database ``D'`` and the candidate results ``R_1..R_k``, the Result
  Feedback module presents their differences from the original pair
  ``(D, R)`` as edit scripts (:class:`DatabaseDelta`, :class:`ResultDelta`);
* the *maintenance* delta :class:`TupleDelta` — a structured record of
  tuple-level inserts, deletes and updates keyed by ``tuple_id``, which the
  incremental view-maintenance layer
  (:meth:`~repro.relational.join.JoinedRelation.apply_delta`,
  :meth:`~repro.relational.evaluator.JoinCache.derive`) uses to patch a
  cached join and its columnar term masks in O(|Δ|) instead of rebuilding
  them from ``D'`` in O(|D|). Under the typed column storage the same
  copy-on-write contract holds representation-deep: an untouched column of
  the derived view *is* the base column object (one shared compact buffer),
  while a patched column copies its buffer at C speed and routes any value
  the narrow buffer cannot hold (huge ints, new dictionary strings) into its
  boxed side table — see :meth:`~repro.relational.columnar.ColumnarView.\
  derive`.

A :class:`TupleDelta` can be recorded directly while a modified database is
constructed (how :func:`~repro.core.materialize.materialize_pairs` produces
it), diffed from two id-aligned database instances (:meth:`TupleDelta.between`),
or derived from a Section 3 :class:`~repro.relational.edit.EditScript`
(:func:`~repro.relational.edit.delta_from_edit_script`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.exceptions import SchemaError
from repro.relational.database import Database
from repro.relational.edit import EditKind, EditScript, min_edit_script, modified_relation_names
from repro.relational.relation import Relation
from repro.relational.types import values_equal

__all__ = [
    "RelationDelta",
    "DatabaseDelta",
    "ResultDelta",
    "TupleDelta",
    "database_delta",
    "result_delta",
    "delta_from_edit_script",
]


@dataclass(frozen=True)
class RelationDelta:
    """The edit script from one relation instance to another."""

    relation_name: str
    script: EditScript

    @property
    def cost(self) -> int:
        """The minimum edit cost between the two instances."""
        return self.script.cost

    def describe(self) -> list[str]:
        """One line per edit operation."""
        return self.script.describe()


@dataclass(frozen=True)
class DatabaseDelta:
    """The differences ``Δ(D, D')`` between the original and a modified database."""

    relation_deltas: tuple[RelationDelta, ...]

    @property
    def cost(self) -> int:
        """``minEdit(D, D')``: total edit cost over all modified relations."""
        return sum(delta.cost for delta in self.relation_deltas)

    @property
    def modified_relation_count(self) -> int:
        """The ``n`` of Equation (3): how many relations were modified."""
        return len(self.relation_deltas)

    @property
    def modified_tuple_count(self) -> int:
        """The ``µ`` of Section 3: number of distinct modified/inserted/deleted tuples."""
        total = 0
        for delta in self.relation_deltas:
            rows = set()
            for op in delta.script.operations:
                rows.add((op.kind, op.source_row if op.source_row is not None else op.target_row))
            total += len(rows)
        return total

    def describe(self) -> list[str]:
        """Readable lines describing every change, grouped by relation."""
        lines: list[str] = []
        for delta in self.relation_deltas:
            lines.extend(delta.describe())
        if not lines:
            lines.append("(no database changes)")
        return lines

    def pretty(self) -> str:
        """A text block of the database changes."""
        return "\n".join(self.describe())


@dataclass(frozen=True)
class ResultDelta:
    """The differences ``Δ(R, R_i)`` between the original result and a candidate result."""

    script: EditScript

    @property
    def cost(self) -> int:
        """``minEdit(R, R_i)``."""
        return self.script.cost

    def describe(self) -> list[str]:
        """Readable lines describing the result changes."""
        lines = self.script.describe()
        if not lines:
            lines.append("(result unchanged)")
        return lines

    def pretty(self) -> str:
        """A text block of the result changes."""
        return "\n".join(self.describe())


# --------------------------------------------------------------- TupleDelta
class TupleDelta:
    """Tuple-level inserts/deletes/updates per relation, keyed by ``tuple_id``.

    The delta describes how a derived database ``D'`` differs from a base
    database ``D`` whose tuple ids it shares (``D'`` is always constructed
    from a copy of ``D``, which preserves ids). Updates and inserts carry the
    tuple's *full* new value row, so a consumer can patch a materialized join
    without consulting ``D'`` itself.

    Recording coalesces ops per ``(relation, tuple_id)``: an update of an
    inserted tuple folds into the insert, a delete of an inserted tuple
    cancels it, an update of an updated tuple replaces the recorded values,
    and a delete of an updated tuple becomes a plain delete.
    """

    __slots__ = ("_inserts", "_deletes", "_updates")

    def __init__(self) -> None:
        self._inserts: dict[str, dict[int, tuple[Any, ...]]] = {}
        self._deletes: dict[str, set[int]] = {}
        self._updates: dict[str, dict[int, tuple[Any, ...]]] = {}

    # -------------------------------------------------------------- recording
    def record_insert(self, relation: str, tuple_id: int, values: Sequence[Any]) -> None:
        """Record the insertion of a new tuple (its id as assigned by ``D'``)."""
        self._inserts.setdefault(relation, {})[tuple_id] = tuple(values)
        self._deletes.get(relation, set()).discard(tuple_id)

    def record_delete(self, relation: str, tuple_id: int) -> None:
        """Record the deletion of a base tuple (cancels a pending insert/update)."""
        inserts = self._inserts.get(relation)
        if inserts and tuple_id in inserts:
            del inserts[tuple_id]
            return
        updates = self._updates.get(relation)
        if updates:
            updates.pop(tuple_id, None)
        self._deletes.setdefault(relation, set()).add(tuple_id)

    def record_update(self, relation: str, tuple_id: int, new_values: Sequence[Any]) -> None:
        """Record the new full value row of an existing tuple."""
        inserts = self._inserts.get(relation)
        if inserts and tuple_id in inserts:
            inserts[tuple_id] = tuple(new_values)
            return
        self._updates.setdefault(relation, {})[tuple_id] = tuple(new_values)

    # ---------------------------------------------------------------- access
    def inserts_for(self, relation: str) -> dict[int, tuple[Any, ...]]:
        """``{tuple_id: values}`` of tuples inserted into *relation* (insertion order)."""
        return dict(self._inserts.get(relation, {}))

    def deletes_for(self, relation: str) -> frozenset[int]:
        """Ids of tuples deleted from *relation*."""
        return frozenset(self._deletes.get(relation, ()))

    def updates_for(self, relation: str) -> dict[int, tuple[Any, ...]]:
        """``{tuple_id: new values}`` of tuples updated in *relation*."""
        return dict(self._updates.get(relation, {}))

    @property
    def relations(self) -> tuple[str, ...]:
        """Names of relations touched by the delta, deterministically ordered."""
        touched = set(self._inserts) | set(self._deletes) | set(self._updates)
        return tuple(sorted(name for name in touched if self._touches(name)))

    def _touches(self, relation: str) -> bool:
        return bool(
            self._inserts.get(relation)
            or self._deletes.get(relation)
            or self._updates.get(relation)
        )

    @property
    def is_empty(self) -> bool:
        """Whether the delta records no effective change."""
        return not self.relations

    @property
    def is_update_only(self) -> bool:
        """Whether the delta consists purely of in-place tuple updates.

        QFE's class-pair materialization only ever performs E1 attribute
        modifications (never E2/E3), so the deltas it records are always
        update-only — the precondition for the cheapest join-maintenance path.
        """
        return not any(self._inserts.values()) and not any(self._deletes.values())

    @property
    def op_count(self) -> int:
        """Total number of recorded tuple-level operations."""
        return sum(len(v) for v in self._inserts.values()) + sum(
            len(v) for v in self._deletes.values()
        ) + sum(len(v) for v in self._updates.values())

    def operations(self) -> Iterator[tuple[str, str, int, tuple[Any, ...] | None]]:
        """Iterate ``(kind, relation, tuple_id, values)`` over all recorded ops."""
        for relation, rows in self._inserts.items():
            for tuple_id, values in rows.items():
                yield ("insert", relation, tuple_id, values)
        for relation, ids in self._deletes.items():
            for tuple_id in sorted(ids):
                yield ("delete", relation, tuple_id, None)
        for relation, rows in self._updates.items():
            for tuple_id, values in rows.items():
                yield ("update", relation, tuple_id, values)

    # ------------------------------------------------------------ derivation
    @classmethod
    def between(cls, base: Database, derived: Database) -> "TupleDelta":
        """Diff two id-aligned database instances into a delta.

        Tuples are matched by ``tuple_id`` per relation (the natural alignment
        for a ``D'`` built from ``D.copy()``): ids present in both with
        differing values become updates, ids only in *base* become deletes,
        ids only in *derived* become inserts.
        """
        delta = cls()
        for name in base.table_names:
            base_rows = {t.tuple_id: t.values for t in base.relation(name).tuples}
            derived_rows = {t.tuple_id: t.values for t in derived.relation(name).tuples}
            for tuple_id, values in derived_rows.items():
                old = base_rows.get(tuple_id)
                if old is None:
                    delta.record_insert(name, tuple_id, values)
                elif not _rows_equal(old, values):
                    delta.record_update(name, tuple_id, values)
            for tuple_id in base_rows:
                if tuple_id not in derived_rows:
                    delta.record_delete(name, tuple_id)
        return delta

    def apply_to(self, database: Database) -> Database:
        """Apply the delta in place to *database* (a copy of the base) and return it.

        Inserts are appended in recording order; because relation ids are
        assigned sequentially, replaying a delta onto a fresh copy of the same
        base reproduces the tuple ids the delta was recorded with.
        """
        for relation_name, rows in self._updates.items():
            relation = database.relation(relation_name)
            for tuple_id, values in rows.items():
                relation.replace_tuple(tuple_id, values)
        for relation_name, ids in self._deletes.items():
            relation = database.relation(relation_name)
            for tuple_id in sorted(ids):
                relation.delete(tuple_id)
        for relation_name, rows in self._inserts.items():
            relation = database.relation(relation_name)
            for tuple_id, values in rows.items():
                inserted = relation.insert(values)
                if inserted.tuple_id != tuple_id:
                    raise SchemaError(
                        f"replaying delta onto {relation_name!r} assigned tuple id "
                        f"{inserted.tuple_id}, but the delta recorded {tuple_id}; "
                        "the database is not a fresh copy of the delta's base"
                    )
        return database

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for relation in self.relations:
            parts.append(
                f"{relation}: +{len(self._inserts.get(relation, {}))} "
                f"-{len(self._deletes.get(relation, set()))} "
                f"~{len(self._updates.get(relation, {}))}"
            )
        return f"TupleDelta({'; '.join(parts) or 'empty'})"


def _rows_equal(left: Sequence[Any], right: Sequence[Any]) -> bool:
    return len(left) == len(right) and all(
        values_equal(a, b) for a, b in zip(left, right)
    )


def delta_from_edit_script(base: Relation, script: EditScript) -> TupleDelta:
    """Resolve a Section 3 edit script against *base* into a :class:`TupleDelta`.

    Edit operations carry row *values*; this resolves them to concrete tuple
    ids by matching each MODIFY/DELETE source row to a not-yet-consumed tuple
    of *base* with equal values. Inserted tuples receive the ids *base* would
    assign on replay (``next_tuple_id`` onward), so
    ``delta.apply_to(copy_of_base_database)`` reproduces the script's target.
    """
    delta = TupleDelta()
    name = base.schema.name
    consumed: set[int] = set()

    def resolve(row_values: Sequence[Any]) -> int:
        for candidate in base.tuples:
            if candidate.tuple_id in consumed:
                continue
            if _rows_equal(candidate.values, tuple(row_values)):
                consumed.add(candidate.tuple_id)
                return candidate.tuple_id
        raise SchemaError(
            f"edit script row {tuple(row_values)!r} does not match any unconsumed "
            f"tuple of relation {name!r}"
        )

    next_insert_id = base.next_tuple_id
    for kind, source_row, target_row in script.row_changes():
        if kind is EditKind.MODIFY:
            delta.record_update(name, resolve(source_row), tuple(target_row))
        elif kind is EditKind.DELETE:
            delta.record_delete(name, resolve(source_row))
        else:
            delta.record_insert(name, next_insert_id, tuple(target_row))
            next_insert_id += 1
    return delta


def database_delta(original: Database, modified: Database) -> DatabaseDelta:
    """Compute ``Δ(D, D')`` as per-relation minimum edit scripts."""
    deltas = []
    for name in modified_relation_names(original, modified):
        script = min_edit_script(original.relation(name), modified.relation(name))
        deltas.append(RelationDelta(name, script))
    return DatabaseDelta(tuple(deltas))


def result_delta(original: Relation, candidate: Relation) -> ResultDelta:
    """Compute ``Δ(R, R_i)`` as a minimum edit script between result instances."""
    return ResultDelta(min_edit_script(original, candidate))
