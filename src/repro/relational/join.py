"""Foreign-key joins with provenance and join indexes.

The QFE Database Generator operates over ``T``, the foreign-key join of the
database's relations (Section 5), and uses a *join index* per foreign key to
track which joined rows are affected when a single base tuple is modified
(Section 5.4.1). :class:`JoinedRelation` bundles:

* the joined :class:`~repro.relational.relation.Relation` whose columns carry
  qualified ``table.column`` names;
* per-row *provenance*: for every joined row, the base ``tuple_id`` it took
  from each participating table;
* the inverse join index: ``(table, tuple_id) → joined row positions``.

Joins are performed along a spanning tree of the schema's foreign-key graph,
which is how the paper's workloads (a chain of 2 and a chain/star of 3
relations) compose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.exceptions import SchemaError
from repro.obs.registry import RegistryStats
from repro.relational.database import Database
from repro.relational.relation import Relation, Tuple
from repro.relational.schema import Attribute, ForeignKey, TableSchema, qualify
from repro.relational.types import values_equal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (delta imports nothing here)
    from repro.relational.delta import TupleDelta

__all__ = ["JoinedRelation", "JoinMaintenanceStats", "JOIN_STATS", "foreign_key_join", "full_join"]


class JoinMaintenanceStats(RegistryStats):
    """Process-wide counters instrumenting join construction vs maintenance.

    ``full_joins`` counts cold :func:`foreign_key_join` materializations;
    ``delta_applies`` counts incremental :meth:`JoinedRelation.apply_delta`
    derivations. The benchmark regression guard pins the delta-derive
    evaluation path to *zero* full rebuilds, so a silent fallback to cold
    behaviour fails a fast test instead of only showing up as a slow bench.

    Registry-backed: the values live in ``qfe_join_*`` counters of the
    process-wide metrics registry, so worker increments merge back to the
    driver and the Prometheus endpoint sees them — while every historical
    call site (``JOIN_STATS.full_joins += 1``) keeps working unchanged.
    """

    _PREFIX = "qfe_join"
    _FIELDS = ("full_joins", "delta_applies")
    _HELP = {
        "full_joins": "Cold foreign-key join materializations.",
        "delta_applies": "Incremental join derivations via apply_delta.",
    }

    def snapshot(self) -> tuple[int, int]:
        """``(full_joins, delta_applies)`` at this moment."""
        return (self.full_joins, self.delta_applies)


#: Module-level instrumentation shared by all joins in the process.
JOIN_STATS = JoinMaintenanceStats()


@dataclass
class JoinedRelation:
    """A materialized foreign-key join with provenance and a join index."""

    relation: Relation
    tables: tuple[str, ...]
    foreign_keys: tuple[ForeignKey, ...]
    provenance: list[dict[str, int]]

    def __post_init__(self) -> None:
        self._join_index: dict[tuple[str, int], list[int]] = {}
        for position, row_provenance in enumerate(self.provenance):
            for table, tuple_id in row_provenance.items():
                self._join_index.setdefault((table, tuple_id), []).append(position)
        self._columnar = None
        self._attach_indexes: dict[tuple[str, tuple[str, ...]], dict[tuple, list]] = {}
        self._base_rows: dict[str, dict[int, tuple[Any, ...]]] = {}
        self._column_offsets: dict[str, int] | None = None

    # ----------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Picklable state: the joined relation, its tables, FKs and provenance.

        The memoized derived state — join index, columnar view (whose compiled
        term tests are closures), attach indexes and base-row maps — is
        dropped; :meth:`__setstate__` rebuilds the join index eagerly and the
        rest lazily. This is the serialization surface the round planner's
        :class:`~repro.relational.evaluator.BaseSnapshot` ships to worker
        processes: rehydration never re-joins, so ``JOIN_STATS.full_joins``
        stays untouched on the worker side.
        """
        return {
            "relation": self.relation,
            "tables": self.tables,
            "foreign_keys": self.foreign_keys,
            "provenance": self.provenance,
        }

    def __setstate__(self, state: dict) -> None:
        self.relation = state["relation"]
        self.tables = state["tables"]
        self.foreign_keys = state["foreign_keys"]
        self.provenance = state["provenance"]
        self.__post_init__()

    # --------------------------------------------------------------- columnar
    def columnar(self):
        """The (lazily built, memoized) columnar view of the joined relation.

        The view snapshots the joined tuples and carries the shared term-mask
        cache; call :meth:`invalidate_columnar` if the joined relation is ever
        mutated after the view was built.
        """
        if self._columnar is None:
            from repro.relational.columnar import ColumnarView  # avoid import cycle

            self._columnar = ColumnarView(self.relation)
        return self._columnar

    def invalidate_columnar(self) -> None:
        """Drop the memoized columnar view (and its term-mask cache)."""
        self._columnar = None

    def adopt_columnar(self, view) -> None:
        """Install a pre-built columnar view (shared-memory snapshot attach).

        The caller asserts *view* was built over exactly this joined
        relation's tuples — e.g. rebuilt from the raw buffers the driver
        exported for this very join. Replaces any memoized view.
        """
        self._columnar = view

    def columnar_memory_report(self) -> dict | None:
        """Storage footprint of the memoized columnar view, or ``None``.

        Reporting never forces a build: a join whose view was not needed yet
        costs nothing and reports nothing. See
        :meth:`~repro.relational.columnar.ColumnarView.memory_report` for the
        per-column breakdown (typed buffer kinds vs boxed object columns).
        """
        return self._columnar.memory_report() if self._columnar is not None else None

    # ----------------------------------------------------------------- access
    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Qualified column names of the joined relation."""
        return self.relation.schema.attribute_names

    def __len__(self) -> int:
        return len(self.relation)

    def row_as_mapping(self, position: int) -> dict[str, Any]:
        """Joined row at *position* as a mapping from qualified name to value."""
        names = self.relation.schema.attribute_names
        return dict(zip(names, self.relation.tuples[position].values))

    def rows_as_mappings(self) -> list[dict[str, Any]]:
        """All joined rows as mappings (used by predicate evaluation)."""
        names = self.relation.schema.attribute_names
        return [dict(zip(names, t.values)) for t in self.relation.tuples]

    def base_tuple_of(self, position: int, table: str) -> int:
        """The base ``tuple_id`` in *table* that produced joined row *position*."""
        try:
            return self.provenance[position][table]
        except KeyError:
            raise SchemaError(f"table {table!r} does not participate in this join") from None

    def joined_positions_of(self, table: str, tuple_id: int) -> tuple[int, ...]:
        """All joined row positions derived from the given base tuple (join index)."""
        return tuple(self._join_index.get((table, tuple_id), ()))

    def fanout_of(self, table: str, tuple_id: int) -> int:
        """How many joined rows a base tuple contributes to (its side-effect width)."""
        return len(self._join_index.get((table, tuple_id), ()))

    def owning_table_of(self, qualified_attribute: str) -> str:
        """The base table owning a qualified joined column."""
        table, _, _ = qualified_attribute.partition(".")
        if table not in self.tables:
            raise SchemaError(f"attribute {qualified_attribute!r} is not part of this join")
        return table

    # ---------------------------------------------------------- delta support
    def _offsets(self) -> dict[str, int]:
        """Start position of each table's columns within the joined schema."""
        if self._column_offsets is None:
            offsets: dict[str, int] = {}
            position = 0
            for table in self.tables:
                offsets[table] = position
                prefix = f"{table}."
                position += sum(1 for name in self.attribute_names if name.startswith(prefix))
            self._column_offsets = offsets
        return self._column_offsets

    def _join_column_positions(self, database: Database, table: str) -> tuple[int, ...]:
        """Positions (within *table*'s own schema) of its spanning-FK join columns."""
        schema = database.schema.table(table)
        columns: set[str] = set()
        for fk in self.foreign_keys:
            if fk.child_table == table:
                columns.update(fk.child_columns)
            if fk.parent_table == table:
                columns.update(fk.parent_columns)
        return tuple(sorted(schema.index_of(c) for c in columns))

    def _attach_index(
        self, database: Database, table: str, column_positions: tuple[int, ...]
    ) -> dict[tuple, list[tuple[int, tuple[Any, ...]]]]:
        """``join key -> [(tuple_id, values)]`` over *table*'s base contents.

        Built lazily once per ``(table, key columns)`` and memoized on the
        joined relation, so repeated delta applications against the same base
        pay O(|Δ|) lookups, not O(|table|) rebuilds. *database* must be the
        instance this join was materialized from.
        """
        cache_key = (table, column_positions)
        index = self._attach_indexes.get(cache_key)
        if index is None:
            index = {}
            for base_tuple in database.relation(table).tuples:
                key = tuple(_norm(base_tuple.values[p]) for p in column_positions)
                if any(part is None for part in key):
                    continue
                index.setdefault(key, []).append((base_tuple.tuple_id, base_tuple.values))
            self._attach_indexes[cache_key] = index
        return index

    def _base_row_map(self, database: Database, table: str) -> dict[int, tuple[Any, ...]]:
        """``tuple_id -> values`` over *table*'s base contents, memoized.

        Like the attach indexes, the map reflects the base instance this join
        was materialized from (which delta application never mutates), so it
        is built once per table and amortized across every delta applied to
        this join — keeping each application O(|Δ|) after the first.
        """
        rows = self._base_rows.get(table)
        if rows is None:
            rows = {t.tuple_id: t.values for t in database.relation(table).tuples}
            self._base_rows[table] = rows
        return rows

    def _seed_plan(
        self, database: Database, seed_table: str
    ) -> list[tuple[str, tuple[int, ...], str, tuple[int, ...]]]:
        """BFS attach order from *seed_table* over the spanning foreign keys.

        Each step is ``(covered_table, covered key positions, new_table, new
        key positions)`` with positions local to the respective table schema;
        following the steps extends a single seed tuple to full joined rows.
        """
        adjacency: dict[str, list[tuple[str, list[tuple[str, str]]]]] = {t: [] for t in self.tables}
        for fk in self.foreign_keys:
            pairs = list(fk.column_pairs())  # (child_column, parent_column)
            adjacency[fk.child_table].append(
                (fk.parent_table, [(child, parent) for child, parent in pairs])
            )
            adjacency[fk.parent_table].append(
                (fk.child_table, [(parent, child) for child, parent in pairs])
            )
        plan: list[tuple[str, tuple[int, ...], str, tuple[int, ...]]] = []
        covered = {seed_table}
        frontier = [seed_table]
        while frontier:
            source = frontier.pop(0)
            source_schema = database.schema.table(source)
            for destination, pairs in adjacency[source]:
                if destination in covered:
                    continue
                destination_schema = database.schema.table(destination)
                plan.append(
                    (
                        source,
                        tuple(source_schema.index_of(s) for s, _ in pairs),
                        destination,
                        tuple(destination_schema.index_of(d) for _, d in pairs),
                    )
                )
                covered.add(destination)
                frontier.append(destination)
        return plan

    def apply_delta(self, delta: "TupleDelta", database: Database) -> "JoinedRelation":
        """Derive the join of the delta-modified database by patching this one.

        *database* must be the **base** instance this join was materialized
        from; *delta* describes how the derived database differs from it. The
        result equals ``foreign_key_join(derived_database, self.tables)`` up
        to row order, but is computed incrementally:

        * updates that leave every join column untouched patch the affected
          joined rows in place (via the join index), sharing all untouched
          tuples, the provenance and the join index with the base;
        * deletes (and the removal side of join-column rewrites) drop exactly
          the joined rows the join index attributes to the tuple;
        * inserts (and the re-insertion side of join-column rewrites) expand
          a single seed tuple along the spanning foreign-key tree, looking up
          matches through memoized base-side attach indexes adjusted by the
          delta — fanout-aware and O(|Δ| · fanout), never a full re-join.

        The columnar view (columns and cached term masks) is derived
        copy-on-write alongside, see
        :meth:`~repro.relational.columnar.ColumnarView.derive`.
        """
        JOIN_STATS.delta_applies += 1
        offsets = self._offsets()
        patches: dict[int, dict[int, Any]] = {}
        removed: set[int] = set()
        pending: dict[str, list[tuple[int, tuple[Any, ...]]]] = {t: [] for t in self.tables}
        deleted_ids: dict[str, set[int]] = {t: set() for t in self.tables}
        rewritten_ids: dict[str, set[int]] = {t: set() for t in self.tables}
        visible_updates: dict[str, dict[int, tuple[Any, ...]]] = {t: {} for t in self.tables}

        # Phase 1 — classify the delta per participating table. Ops on tables
        # outside this join cannot affect it and are ignored.
        for table in self.tables:
            deletes = delta.deletes_for(table)
            updates = delta.updates_for(table)
            inserts = delta.inserts_for(table)
            if not deletes and not updates and not inserts:
                continue
            base_rows = self._base_row_map(database, table)
            join_positions = self._join_column_positions(database, table)
            for tuple_id in deletes:
                if tuple_id not in base_rows:
                    raise SchemaError(
                        f"delta deletes unknown tuple {tuple_id} of {table!r}"
                    )
                deleted_ids[table].add(tuple_id)
                removed.update(self.joined_positions_of(table, tuple_id))
            for tuple_id, new_values in updates.items():
                old_values = base_rows.get(tuple_id)
                if old_values is None:
                    raise SchemaError(
                        f"delta updates unknown tuple {tuple_id} of {table!r}"
                    )
                if any(
                    not values_equal(old_values[p], new_values[p]) for p in join_positions
                ):
                    # Join-column rewrite: the tuple leaves its current joined
                    # rows and re-attaches wherever its new key matches.
                    rewritten_ids[table].add(tuple_id)
                    removed.update(self.joined_positions_of(table, tuple_id))
                    pending[table].append((tuple_id, tuple(new_values)))
                    continue
                visible_updates[table][tuple_id] = tuple(new_values)
                offset = offsets[table]
                changed_cells = {
                    offset + index: new
                    for index, (old, new) in enumerate(zip(old_values, new_values))
                    if not values_equal(old, new)
                }
                if not changed_cells:
                    continue  # no-op update
                for position in self.joined_positions_of(table, tuple_id):
                    patches.setdefault(position, {}).update(changed_cells)
            for tuple_id, values in inserts.items():
                pending[table].append((tuple_id, tuple(values)))

        # Phase 2 — expand pending (re)insertions into new joined rows. Tables
        # are processed in join order; a table's own pending tuples only become
        # visible to *later* tables' expansions, so each new combination of
        # fresh tuples is produced exactly once.
        appended_rows: list[tuple[Any, ...]] = []
        appended_provenance: list[dict[str, int]] = []
        extra_visible: dict[str, list[tuple[int, tuple[Any, ...]]]] = {t: [] for t in self.tables}

        def visible_matches(
            table: str, column_positions: tuple[int, ...], key: tuple
        ) -> list[tuple[int, tuple[Any, ...]]]:
            matches: list[tuple[int, tuple[Any, ...]]] = []
            for tuple_id, values in self._attach_index(database, table, column_positions).get(key, ()):
                if tuple_id in deleted_ids[table] or tuple_id in rewritten_ids[table]:
                    continue
                updated = visible_updates[table].get(tuple_id)
                matches.append((tuple_id, updated if updated is not None else values))
            for tuple_id, values in extra_visible[table]:
                candidate_key = tuple(_norm(values[p]) for p in column_positions)
                if candidate_key == key:
                    matches.append((tuple_id, values))
            return matches

        for table in self.tables:
            if not pending[table]:
                continue
            plan = self._seed_plan(database, table)
            for tuple_id, values in pending[table]:
                partials: list[dict[str, tuple[int, tuple[Any, ...]]]] = [
                    {table: (tuple_id, values)}
                ]
                for source, source_positions, destination, destination_positions in plan:
                    expanded: list[dict[str, tuple[int, tuple[Any, ...]]]] = []
                    for partial in partials:
                        _, source_values = partial[source]
                        key = tuple(_norm(source_values[p]) for p in source_positions)
                        if any(part is None for part in key):
                            continue
                        for match in visible_matches(destination, destination_positions, key):
                            extended = dict(partial)
                            extended[destination] = match
                            expanded.append(extended)
                    partials = expanded
                    if not partials:
                        break
                for partial in partials:
                    row: list[Any] = []
                    provenance: dict[str, int] = {}
                    for member in self.tables:
                        member_id, member_values = partial[member]
                        row.extend(member_values)
                        provenance[member] = member_id
                    appended_rows.append(tuple(row))
                    appended_provenance.append(provenance)
            extra_visible[table].extend(pending[table])

        # Phase 3 — assemble the derived joined relation and columnar view.
        return self._build_derived(patches, removed, appended_rows, appended_provenance)

    def _build_derived(
        self,
        patches: dict[int, dict[int, Any]],
        removed: set[int],
        appended_rows: list[tuple[Any, ...]],
        appended_provenance: list[dict[str, int]],
    ) -> "JoinedRelation":
        base_tuples = self.relation.tuples
        structural = bool(removed or appended_rows)
        if not structural:
            new_tuples = list(base_tuples)
            for position, cells in patches.items():
                values = list(new_tuples[position].values)
                for index, value in cells.items():
                    values[index] = value
                new_tuples[position] = Tuple(values, new_tuples[position].tuple_id)
            provenance = self.provenance
            join_index = self._join_index
        else:
            new_tuples = []
            provenance = []
            next_id = 0
            for position, base_tuple in enumerate(base_tuples):
                if position in removed:
                    continue
                cells = patches.get(position)
                if cells:
                    values = list(base_tuple.values)
                    for index, value in cells.items():
                        values[index] = value
                    base_tuple = Tuple(values, base_tuple.tuple_id)
                new_tuples.append(base_tuple)
                provenance.append(self.provenance[position])
                if base_tuple.tuple_id is not None:
                    next_id = max(next_id, base_tuple.tuple_id + 1)
            for row, row_provenance in zip(appended_rows, appended_provenance):
                new_tuples.append(Tuple(row, next_id))
                provenance.append(row_provenance)
                next_id += 1
            join_index = None

        derived = JoinedRelation.__new__(JoinedRelation)
        derived.relation = Relation.adopt_tuples(self.relation.schema, new_tuples)
        derived.tables = self.tables
        derived.foreign_keys = self.foreign_keys
        derived.provenance = provenance
        if join_index is not None:
            derived._join_index = join_index
        else:
            derived._join_index = {}
            for position, row_provenance in enumerate(provenance):
                for table, tuple_id in row_provenance.items():
                    derived._join_index.setdefault((table, tuple_id), []).append(position)
        derived._attach_indexes = {}
        derived._base_rows = {}
        derived._column_offsets = self._column_offsets

        # Derive the columnar view copy-on-write from the base view; building
        # the base view here is amortized — the cache shares it across every
        # delta derived from this join.
        removed_ascending = sorted(removed)
        derived._columnar = self.columnar().derive(patches, removed_ascending, appended_rows)
        return derived


def _joined_schema(name: str, database: Database, tables: Sequence[str]) -> TableSchema:
    attributes: list[Attribute] = []
    for table in tables:
        for attribute in database.schema.table(table).attributes:
            attributes.append(attribute.renamed(qualify(table, attribute.name)))
    return TableSchema(name, attributes)


def foreign_key_join(database: Database, tables: Sequence[str]) -> JoinedRelation:
    """Materialize the foreign-key join of *tables* in join-graph order.

    The join follows a spanning tree of foreign keys connecting the tables; a
    single table yields a trivially joined relation. Raises
    :class:`SchemaError` if the tables are not connected by foreign keys.
    """
    JOIN_STATS.full_joins += 1
    ordered = list(dict.fromkeys(tables))
    if not ordered:
        raise SchemaError("cannot join an empty list of tables")
    for table in ordered:
        database.schema.table(table)
    spanning = database.schema.spanning_foreign_keys(ordered)
    join_name = "_JOIN_".join(ordered)
    schema = _joined_schema(join_name, database, ordered)

    # Start with the first table, then repeatedly attach a table connected by
    # a spanning foreign key to the already-joined set.
    joined_tables: list[str] = [ordered[0]]
    rows: list[dict[str, Any]] = []
    provenance: list[dict[str, int]] = []
    first_relation = database.relation(ordered[0])
    for base_tuple in first_relation.tuples:
        row = {
            qualify(ordered[0], name): value
            for name, value in zip(first_relation.schema.attribute_names, base_tuple.values)
        }
        rows.append(row)
        provenance.append({ordered[0]: base_tuple.tuple_id})

    remaining_fks = list(spanning)
    while len(joined_tables) < len(ordered):
        progressed = False
        for fk in list(remaining_fks):
            if fk.child_table in joined_tables and fk.parent_table not in joined_tables:
                new_table, existing_table, pairs = (
                    fk.parent_table,
                    fk.child_table,
                    [(parent, child) for child, parent in fk.column_pairs()],
                )
            elif fk.parent_table in joined_tables and fk.child_table not in joined_tables:
                new_table, existing_table, pairs = (
                    fk.child_table,
                    fk.parent_table,
                    [(child, parent) for child, parent in fk.column_pairs()],
                )
            else:
                continue
            rows, provenance = _attach_table(
                database, rows, provenance, existing_table, new_table, pairs
            )
            joined_tables.append(new_table)
            remaining_fks.remove(fk)
            progressed = True
            break
        if not progressed:  # pragma: no cover - guarded by is_join_connected
            raise SchemaError(f"tables {ordered} are not connected by foreign keys")

    relation = Relation(schema)
    ordered_names = schema.attribute_names
    for row in rows:
        relation.insert([row.get(name) for name in ordered_names])
    return JoinedRelation(
        relation=relation,
        tables=tuple(ordered),
        foreign_keys=tuple(spanning),
        provenance=provenance,
    )


def _attach_table(
    database: Database,
    rows: list[dict[str, Any]],
    provenance: list[dict[str, int]],
    existing_table: str,
    new_table: str,
    column_pairs: Iterable[tuple[str, str]],
) -> tuple[list[dict[str, Any]], list[dict[str, int]]]:
    """Equi-join the accumulated rows with *new_table* along the FK columns.

    ``column_pairs`` maps new-table columns to existing-table columns.
    """
    new_relation = database.relation(new_table)
    pairs = list(column_pairs)
    new_columns = [pair[0] for pair in pairs]
    existing_qualified = [qualify(existing_table, pair[1]) for pair in pairs]

    index: dict[tuple, list[Tuple]] = {}
    column_positions = [new_relation.schema.index_of(c) for c in new_columns]
    for base_tuple in new_relation.tuples:
        key = tuple(_norm(base_tuple.values[p]) for p in column_positions)
        if any(part is None for part in key):
            continue
        index.setdefault(key, []).append(base_tuple)

    attribute_names = new_relation.schema.attribute_names
    joined_rows: list[dict[str, Any]] = []
    joined_provenance: list[dict[str, int]] = []
    for row, row_provenance in zip(rows, provenance):
        key = tuple(_norm(row.get(name)) for name in existing_qualified)
        if any(part is None for part in key):
            continue
        for match in index.get(key, ()):
            combined = dict(row)
            for name, value in zip(attribute_names, match.values):
                combined[qualify(new_table, name)] = value
            joined_rows.append(combined)
            new_provenance = dict(row_provenance)
            new_provenance[new_table] = match.tuple_id
            joined_provenance.append(new_provenance)
    return joined_rows, joined_provenance


def _norm(value: Any) -> Any:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return value


def full_join(database: Database) -> JoinedRelation:
    """The foreign-key join of *all* relations in the database (the paper's ``T``)."""
    return foreign_key_join(database, database.table_names)
