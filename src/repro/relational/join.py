"""Foreign-key joins with provenance and join indexes.

The QFE Database Generator operates over ``T``, the foreign-key join of the
database's relations (Section 5), and uses a *join index* per foreign key to
track which joined rows are affected when a single base tuple is modified
(Section 5.4.1). :class:`JoinedRelation` bundles:

* the joined :class:`~repro.relational.relation.Relation` whose columns carry
  qualified ``table.column`` names;
* per-row *provenance*: for every joined row, the base ``tuple_id`` it took
  from each participating table;
* the inverse join index: ``(table, tuple_id) → joined row positions``.

Joins are performed along a spanning tree of the schema's foreign-key graph,
which is how the paper's workloads (a chain of 2 and a chain/star of 3
relations) compose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation, Tuple
from repro.relational.schema import Attribute, ForeignKey, TableSchema, qualify

__all__ = ["JoinedRelation", "foreign_key_join", "full_join"]


@dataclass
class JoinedRelation:
    """A materialized foreign-key join with provenance and a join index."""

    relation: Relation
    tables: tuple[str, ...]
    foreign_keys: tuple[ForeignKey, ...]
    provenance: list[dict[str, int]]

    def __post_init__(self) -> None:
        self._join_index: dict[tuple[str, int], list[int]] = {}
        for position, row_provenance in enumerate(self.provenance):
            for table, tuple_id in row_provenance.items():
                self._join_index.setdefault((table, tuple_id), []).append(position)
        self._columnar = None

    # --------------------------------------------------------------- columnar
    def columnar(self):
        """The (lazily built, memoized) columnar view of the joined relation.

        The view snapshots the joined tuples and carries the shared term-mask
        cache; call :meth:`invalidate_columnar` if the joined relation is ever
        mutated after the view was built.
        """
        if self._columnar is None:
            from repro.relational.columnar import ColumnarView  # avoid import cycle

            self._columnar = ColumnarView(self.relation)
        return self._columnar

    def invalidate_columnar(self) -> None:
        """Drop the memoized columnar view (and its term-mask cache)."""
        self._columnar = None

    # ----------------------------------------------------------------- access
    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Qualified column names of the joined relation."""
        return self.relation.schema.attribute_names

    def __len__(self) -> int:
        return len(self.relation)

    def row_as_mapping(self, position: int) -> dict[str, Any]:
        """Joined row at *position* as a mapping from qualified name to value."""
        names = self.relation.schema.attribute_names
        return dict(zip(names, self.relation.tuples[position].values))

    def rows_as_mappings(self) -> list[dict[str, Any]]:
        """All joined rows as mappings (used by predicate evaluation)."""
        names = self.relation.schema.attribute_names
        return [dict(zip(names, t.values)) for t in self.relation.tuples]

    def base_tuple_of(self, position: int, table: str) -> int:
        """The base ``tuple_id`` in *table* that produced joined row *position*."""
        try:
            return self.provenance[position][table]
        except KeyError:
            raise SchemaError(f"table {table!r} does not participate in this join") from None

    def joined_positions_of(self, table: str, tuple_id: int) -> tuple[int, ...]:
        """All joined row positions derived from the given base tuple (join index)."""
        return tuple(self._join_index.get((table, tuple_id), ()))

    def fanout_of(self, table: str, tuple_id: int) -> int:
        """How many joined rows a base tuple contributes to (its side-effect width)."""
        return len(self._join_index.get((table, tuple_id), ()))

    def owning_table_of(self, qualified_attribute: str) -> str:
        """The base table owning a qualified joined column."""
        table, _, _ = qualified_attribute.partition(".")
        if table not in self.tables:
            raise SchemaError(f"attribute {qualified_attribute!r} is not part of this join")
        return table


def _joined_schema(name: str, database: Database, tables: Sequence[str]) -> TableSchema:
    attributes: list[Attribute] = []
    for table in tables:
        for attribute in database.schema.table(table).attributes:
            attributes.append(attribute.renamed(qualify(table, attribute.name)))
    return TableSchema(name, attributes)


def foreign_key_join(database: Database, tables: Sequence[str]) -> JoinedRelation:
    """Materialize the foreign-key join of *tables* in join-graph order.

    The join follows a spanning tree of foreign keys connecting the tables; a
    single table yields a trivially joined relation. Raises
    :class:`SchemaError` if the tables are not connected by foreign keys.
    """
    ordered = list(dict.fromkeys(tables))
    if not ordered:
        raise SchemaError("cannot join an empty list of tables")
    for table in ordered:
        database.schema.table(table)
    spanning = database.schema.spanning_foreign_keys(ordered)
    join_name = "_JOIN_".join(ordered)
    schema = _joined_schema(join_name, database, ordered)

    # Start with the first table, then repeatedly attach a table connected by
    # a spanning foreign key to the already-joined set.
    joined_tables: list[str] = [ordered[0]]
    rows: list[dict[str, Any]] = []
    provenance: list[dict[str, int]] = []
    first_relation = database.relation(ordered[0])
    for base_tuple in first_relation.tuples:
        row = {
            qualify(ordered[0], name): value
            for name, value in zip(first_relation.schema.attribute_names, base_tuple.values)
        }
        rows.append(row)
        provenance.append({ordered[0]: base_tuple.tuple_id})

    remaining_fks = list(spanning)
    while len(joined_tables) < len(ordered):
        progressed = False
        for fk in list(remaining_fks):
            if fk.child_table in joined_tables and fk.parent_table not in joined_tables:
                new_table, existing_table, pairs = (
                    fk.parent_table,
                    fk.child_table,
                    [(parent, child) for child, parent in fk.column_pairs()],
                )
            elif fk.parent_table in joined_tables and fk.child_table not in joined_tables:
                new_table, existing_table, pairs = (
                    fk.child_table,
                    fk.parent_table,
                    [(child, parent) for child, parent in fk.column_pairs()],
                )
            else:
                continue
            rows, provenance = _attach_table(
                database, rows, provenance, existing_table, new_table, pairs
            )
            joined_tables.append(new_table)
            remaining_fks.remove(fk)
            progressed = True
            break
        if not progressed:  # pragma: no cover - guarded by is_join_connected
            raise SchemaError(f"tables {ordered} are not connected by foreign keys")

    relation = Relation(schema)
    ordered_names = schema.attribute_names
    for row in rows:
        relation.insert([row.get(name) for name in ordered_names])
    return JoinedRelation(
        relation=relation,
        tables=tuple(ordered),
        foreign_keys=tuple(spanning),
        provenance=provenance,
    )


def _attach_table(
    database: Database,
    rows: list[dict[str, Any]],
    provenance: list[dict[str, int]],
    existing_table: str,
    new_table: str,
    column_pairs: Iterable[tuple[str, str]],
) -> tuple[list[dict[str, Any]], list[dict[str, int]]]:
    """Equi-join the accumulated rows with *new_table* along the FK columns.

    ``column_pairs`` maps new-table columns to existing-table columns.
    """
    new_relation = database.relation(new_table)
    pairs = list(column_pairs)
    new_columns = [pair[0] for pair in pairs]
    existing_qualified = [qualify(existing_table, pair[1]) for pair in pairs]

    index: dict[tuple, list[Tuple]] = {}
    column_positions = [new_relation.schema.index_of(c) for c in new_columns]
    for base_tuple in new_relation.tuples:
        key = tuple(_norm(base_tuple.values[p]) for p in column_positions)
        if any(part is None for part in key):
            continue
        index.setdefault(key, []).append(base_tuple)

    attribute_names = new_relation.schema.attribute_names
    joined_rows: list[dict[str, Any]] = []
    joined_provenance: list[dict[str, int]] = []
    for row, row_provenance in zip(rows, provenance):
        key = tuple(_norm(row.get(name)) for name in existing_qualified)
        if any(part is None for part in key):
            continue
        for match in index.get(key, ()):
            combined = dict(row)
            for name, value in zip(attribute_names, match.values):
                combined[qualify(new_table, name)] = value
            joined_rows.append(combined)
            new_provenance = dict(row_provenance)
            new_provenance[new_table] = match.tuple_id
            joined_provenance.append(new_provenance)
    return joined_rows, joined_provenance


def _norm(value: Any) -> Any:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return value


def full_join(database: Database) -> JoinedRelation:
    """The foreign-key join of *all* relations in the database (the paper's ``T``)."""
    return foreign_key_join(database, database.table_names)
