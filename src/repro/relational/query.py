"""Query objects: select-project-join (SPJ) and SPJ-union (SPJU) queries.

The paper's candidate queries are SPJ queries ``π_ℓ(σ_p(J))`` where ``J`` is
a foreign-key join of a subset of the database relations, ``ℓ`` a projection
list over ``J``'s qualified attributes and ``p`` a DNF selection predicate
(Section 4). Section 6.4 sketches an extension to SPJ-union queries, which is
modelled by :class:`SPJUQuery`.

Queries are immutable value objects. They do not evaluate themselves — the
:mod:`repro.relational.evaluator` module executes them on a
:class:`~repro.relational.database.Database` (or on a pre-joined relation,
which is how the QFE inner loops avoid recomputing the join).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import SchemaError, UnsupportedQueryError
from repro.relational.predicates import DNFPredicate
from repro.relational.schema import DatabaseSchema

__all__ = ["SPJQuery", "SPJUQuery"]


@dataclass(frozen=True)
class SPJQuery:
    """A select-project-join query ``π_ℓ(σ_p(⋈ tables))``.

    Attributes
    ----------
    tables:
        The relations participating in the foreign-key join, in join order.
    projection:
        Qualified attribute names (``table.column``) projected, in output order.
    predicate:
        The DNF selection predicate over qualified attribute names.
    distinct:
        ``False`` (default) for the paper's duplicate-preserving bag semantics,
        ``True`` for set semantics (Section 6.1).
    """

    tables: tuple[str, ...]
    projection: tuple[str, ...]
    predicate: DNFPredicate = field(default_factory=DNFPredicate.true)
    distinct: bool = False

    def __init__(
        self,
        tables: Iterable[str],
        projection: Iterable[str],
        predicate: DNFPredicate | None = None,
        *,
        distinct: bool = False,
    ) -> None:
        object.__setattr__(self, "tables", tuple(tables))
        object.__setattr__(self, "projection", tuple(projection))
        object.__setattr__(self, "predicate", predicate if predicate is not None else DNFPredicate.true())
        object.__setattr__(self, "distinct", distinct)
        if not self.tables:
            raise SchemaError("an SPJ query must reference at least one table")
        if not self.projection:
            raise SchemaError("an SPJ query must project at least one attribute")

    # -------------------------------------------------------------- structure
    @property
    def join_signature(self) -> tuple[str, ...]:
        """The sorted tuple of joined tables (the query's join schema identity)."""
        return tuple(sorted(self.tables))

    def selection_attributes(self) -> tuple[str, ...]:
        """Qualified attributes mentioned in the selection predicate."""
        return self.predicate.attributes()

    def validate(self, schema: DatabaseSchema) -> None:
        """Check that tables, projection and predicate attributes exist and join.

        Raises :class:`SchemaError` / :class:`UnsupportedQueryError` otherwise.
        """
        for table in self.tables:
            schema.table(table)
        if not schema.is_join_connected(self.tables):
            raise UnsupportedQueryError(
                f"tables {list(self.tables)} are not connected by foreign keys"
            )
        known = set()
        for table in self.tables:
            known.update(schema.table(table).qualified_names())
        for attribute in self.projection:
            if attribute not in known:
                raise SchemaError(f"projected attribute {attribute!r} is not in the join")
        for attribute in self.selection_attributes():
            if attribute not in known:
                raise SchemaError(f"selection attribute {attribute!r} is not in the join")

    def with_predicate(self, predicate: DNFPredicate) -> "SPJQuery":
        """A copy of this query with a different selection predicate."""
        return SPJQuery(self.tables, self.projection, predicate, distinct=self.distinct)

    def with_distinct(self, distinct: bool = True) -> "SPJQuery":
        """A copy of this query with set (``DISTINCT``) semantics toggled."""
        return SPJQuery(self.tables, self.projection, self.predicate, distinct=distinct)

    # -------------------------------------------------------------- identity
    def canonical_key(self) -> tuple:
        """A hashable identity used to deduplicate candidate queries."""
        return (
            self.join_signature,
            self.projection,
            self.predicate.canonical_key(),
            self.distinct,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SPJQuery):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __str__(self) -> str:
        from repro.sql.render import render_query  # local import to avoid a cycle

        return render_query(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SPJQuery(tables={list(self.tables)}, projection={list(self.projection)}, "
            f"predicate={self.predicate}, distinct={self.distinct})"
        )


@dataclass(frozen=True)
class SPJUQuery:
    """A union of SPJ queries (Section 6.4 extension).

    All branches must share the same output arity; bag semantics corresponds
    to SQL ``UNION ALL`` and set semantics to ``UNION``.
    """

    branches: tuple[SPJQuery, ...]
    distinct: bool = False

    def __init__(self, branches: Iterable[SPJQuery], *, distinct: bool = False) -> None:
        object.__setattr__(self, "branches", tuple(branches))
        object.__setattr__(self, "distinct", distinct)
        if not self.branches:
            raise SchemaError("an SPJU query must have at least one branch")
        arities = {len(branch.projection) for branch in self.branches}
        if len(arities) != 1:
            raise UnsupportedQueryError("all branches of a union must have the same arity")

    def validate(self, schema: DatabaseSchema) -> None:
        """Validate every branch against the schema."""
        for branch in self.branches:
            branch.validate(schema)

    def canonical_key(self) -> tuple:
        """A hashable identity used to deduplicate candidate queries."""
        branch_keys = tuple(sorted((repr(b.canonical_key()) for b in self.branches)))
        return (branch_keys, self.distinct)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SPJUQuery):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __str__(self) -> str:
        from repro.sql.render import render_union  # local import to avoid a cycle

        return render_union(self)
