"""Query evaluation for SPJ and SPJU queries.

The evaluator executes queries against a :class:`~repro.relational.database.Database`
by materializing the foreign-key join of the query's tables and then applying
the selection predicate and the projection. For the QFE inner loops — which
evaluate many candidate queries over the *same* join — the evaluator also
accepts a pre-joined :class:`~repro.relational.join.JoinedRelation` so the
join is computed once per database instance.

Execution is columnar and late-materialized: predicates are compiled into
column-wise mask evaluators (:mod:`repro.relational.columnar`), distinct
selection terms are evaluated once per join and cached as bitmasks, and each
candidate only pays for combining cached masks plus gathering its selected
rows. :func:`evaluate_batch` evaluates a whole candidate set in a single pass
over the join, sharing term masks *and* deduplicating result materialization
and fingerprinting between candidates that select identical rows. The
original row-at-a-time implementation is retained as
:func:`evaluate_on_join_reference` — the oracle the differential tests hold
the columnar engine against.

Bag semantics (duplicate-preserving) is the default, matching the paper's
Section 5 assumption; ``distinct=True`` on a query switches to set semantics
(Section 6.1).
"""

from __future__ import annotations

import pickle
import threading
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.exceptions import UnsupportedQueryError
from repro.obs.trace import get_tracer
from repro.relational.columnar import ColumnarView, mask_positions
from repro.relational.database import Database
from repro.relational.join import JoinedRelation, foreign_key_join
from repro.relational.query import SPJQuery, SPJUQuery
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, TableSchema
from repro.relational.types import canonical_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.delta import TupleDelta

__all__ = [
    "evaluate",
    "evaluate_on_join",
    "evaluate_on_join_reference",
    "evaluate_batch",
    "BatchEvaluation",
    "result_schema",
    "results_equal",
    "result_fingerprint",
    "BaseSnapshot",
    "SharedSnapshotHandle",
    "SharedSnapshotCache",
    "JoinCache",
]


def result_schema(query: SPJQuery, database: Database, *, name: str = "Result") -> TableSchema:
    """The schema of the query's output relation (qualified projection names)."""
    attributes: list[Attribute] = []
    for qualified in query.projection:
        table, _, column = qualified.partition(".")
        declared = database.schema.table(table).attribute(column)
        attributes.append(Attribute(qualified, declared.type, declared.nullable))
    return TableSchema(name, attributes)


def evaluate(query: SPJQuery | SPJUQuery, database: Database, *, name: str = "Result") -> Relation:
    """Execute *query* on *database* and return its result relation."""
    if isinstance(query, SPJUQuery):
        return _evaluate_union(query, database, name=name)
    query.validate(database.schema)
    joined = foreign_key_join(database, query.tables)
    return evaluate_on_join(query, joined, database, name=name)


def _check_join_covers(query: SPJQuery, joined: JoinedRelation) -> None:
    missing = set(query.tables) - set(joined.tables)
    if missing:
        raise UnsupportedQueryError(
            f"pre-joined relation lacks tables {sorted(missing)} required by the query"
        )


def evaluate_on_join(
    query: SPJQuery,
    joined: JoinedRelation,
    database: Database,
    *,
    name: str = "Result",
    columnar: ColumnarView | None = None,
) -> Relation:
    """Execute an SPJ query against a pre-materialized join of its tables.

    The join must cover every table the query references (a superset join is
    allowed, which is how QFE evaluates all candidates over the single full
    foreign-key join ``T``). Execution is columnar: the selection predicate is
    evaluated column-wise into a row mask (shared term masks are cached on the
    join's :class:`~repro.relational.columnar.ColumnarView`) and only the
    selected rows are materialized.
    """
    _check_join_covers(query, joined)
    schema = result_schema(query, database, name=name)
    projection_positions = [joined.relation.schema.index_of(a) for a in query.projection]
    view = columnar if columnar is not None else joined.columnar()
    mask = view.predicate_mask(query.predicate)
    return _materialize_selection(view, mask, projection_positions, schema, query.distinct)


def _materialize_selection(
    view: ColumnarView,
    mask: int,
    projection_positions: Sequence[int],
    schema: TableSchema,
    distinct: bool,
) -> Relation:
    output = Relation(schema)
    rows = view.gather(mask, projection_positions)
    if distinct:
        rows = _distinct_rows(rows)
    # Projected values are verbatim copies of already-coerced stored values,
    # so the raw append path is safe (and skips per-cell coercion).
    output.extend_raw(rows)
    return output


def evaluate_on_join_reference(
    query: SPJQuery,
    joined: JoinedRelation,
    database: Database,
    *,
    name: str = "Result",
) -> Relation:
    """Row-at-a-time reference implementation of :func:`evaluate_on_join`.

    Kept as the oracle for differential tests of the columnar engine: it
    builds a ``name -> value`` mapping per joined row and interprets the DNF
    predicate on it, exactly as the original evaluator did.
    """
    _check_join_covers(query, joined)
    schema = result_schema(query, database, name=name)
    output = Relation(schema)
    names = joined.relation.schema.attribute_names
    projection_positions = [joined.relation.schema.index_of(a) for a in query.projection]
    predicate = query.predicate
    seen: set[tuple] = set()
    for row_tuple in joined.relation.tuples:
        row = dict(zip(names, row_tuple.values))
        if not predicate.evaluate_row(row):
            continue
        projected = tuple(row_tuple.values[p] for p in projection_positions)
        if query.distinct:
            key = _normalize(projected)
            if key in seen:
                continue
            seen.add(key)
        output.insert(projected)
    return output


@dataclass(frozen=True)
class BatchEvaluation:
    """Results (and optional fingerprints) of evaluating many candidates at once.

    ``results[i]`` / ``fingerprints[i]`` correspond to the *i*-th query passed
    to :func:`evaluate_batch`. Candidates that select identical rows under the
    same projection share one :class:`Relation` instance and one fingerprint —
    callers must treat the result relations as read-only.
    """

    results: tuple[Relation, ...]
    fingerprints: tuple[Any, ...] | None

    def __len__(self) -> int:
        return len(self.results)


def evaluate_batch(
    queries: Sequence[SPJQuery],
    joined: JoinedRelation,
    database: Database,
    *,
    set_semantics: bool = False,
    name: str = "Result",
    with_fingerprints: bool = True,
    columnar: ColumnarView | None = None,
) -> BatchEvaluation:
    """Evaluate all *queries* over one pre-materialized join in a single pass.

    Term masks are shared across candidates through the join's columnar view,
    and candidates whose (selection mask, projection, distinct) coincide share
    the materialized result and its fingerprint — so a batch of ``q`` queries
    with ``t`` distinct terms and ``g`` distinct results costs ``O(t)`` column
    scans plus ``O(g)`` result materializations, not ``O(q)`` of each.
    """
    view = columnar if columnar is not None else joined.columnar()
    join_schema = joined.relation.schema
    results: list[Relation] = []
    fingerprints: list[Any] = []
    shared: dict[tuple, tuple[Relation, Any]] = {}
    for query in queries:
        _check_join_covers(query, joined)
        projection_positions = tuple(join_schema.index_of(a) for a in query.projection)
        mask = view.predicate_mask(query.predicate)
        key = (mask, projection_positions, query.distinct)
        cached = shared.get(key)
        if cached is None:
            result = _materialize_selection(
                view,
                mask,
                projection_positions,
                result_schema(query, database, name=name),
                query.distinct,
            )
            fingerprint = (
                result_fingerprint(result, set_semantics=set_semantics)
                if with_fingerprints
                else None
            )
            cached = (result, fingerprint)
            shared[key] = cached
        results.append(cached[0])
        fingerprints.append(cached[1])
    return BatchEvaluation(
        results=tuple(results),
        fingerprints=tuple(fingerprints) if with_fingerprints else None,
    )


def _evaluate_union(query: SPJUQuery, database: Database, *, name: str) -> Relation:
    query.validate(database.schema)
    first = evaluate(query.branches[0], database, name=name)
    output = Relation(first.schema)
    seen: set[tuple] = set()
    for branch in query.branches:
        branch_result = evaluate(branch, database, name=name)
        for row in branch_result.rows():
            if query.distinct:
                key = _normalize(row)
                if key in seen:
                    continue
                seen.add(key)
            output.insert(row)
    return output


def _normalize(row: Iterable[Any]) -> tuple:
    # Exact canonical form for DISTINCT deduplication: equal numerics share a
    # key without the precision loss of a float() round-trip (distinct
    # integers ≥ 2^53 must never dedup onto one row).
    return tuple(canonical_value(v) for v in row)


def _distinct_rows(rows: list[tuple[Any, ...]]) -> list[tuple[Any, ...]]:
    seen: set[tuple] = set()
    unique: list[tuple[Any, ...]] = []
    for row in rows:
        key = _normalize(row)
        if key in seen:
            continue
        seen.add(key)
        unique.append(row)
    return unique


def results_equal(left: Relation, right: Relation, *, set_semantics: bool = False) -> bool:
    """Whether two result relations are equal under bag (default) or set semantics."""
    if set_semantics:
        return left.set_equal(right)
    return left.bag_equal(right)


def result_fingerprint(result: Relation, *, set_semantics: bool = False) -> frozenset | tuple:
    """A hashable fingerprint of a result used to group equivalent candidate queries.

    Fingerprint equality is exactly bag (resp. set) equality of the results:
    the bag fingerprint is the multiset of normalized rows under a total,
    content-only ordering, so equal bags always produce equal fingerprints
    regardless of row order.
    """
    if set_semantics:
        return result.set_of_rows()
    return tuple(
        sorted(
            result.bag_of_rows().items(),
            key=lambda item: (tuple(map(_sort_key, item[0])), repr(item[0])),
        )
    )


def _sort_key(value: Any) -> tuple:
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, str(int(value)))
    if isinstance(value, (int, float)):
        return (2, f"{float(value):030.10f}")
    return (3, str(value))


@dataclass
class BaseSnapshot:
    """A picklable snapshot of a base database and its materialized joins.

    The parallel round planner captures the session's base database ``D``
    — plus the foreign-key join (and provenance) of every join signature the
    surviving candidates reference — exactly once, ships the pickled snapshot
    to each worker process, and every worker :meth:`restore`\\ s it into a
    private :class:`JoinCache` seeded with the same join objects the driver
    holds. Workers then evaluate candidate modifications purely by applying
    :class:`~repro.relational.delta.TupleDelta`\\ s against the seeded joins
    (:meth:`JoinCache.derive`), so no worker ever performs a full
    :func:`foreign_key_join` — a property pinned by
    :data:`~repro.relational.join.JOIN_STATS`.

    Pickling drops every non-picklable memo along the way (compiled term
    tests, cached term masks, join indexes, and the columnar views — whose
    typed buffers, zone maps and sorted term indexes are rebuilt lazily on
    rehydration — see ``JoinedRelation.__getstate__`` and
    ``ColumnarView.__getstate__``), so a snapshot round-trips through
    ``pickle`` by construction.
    """

    database: Database
    joins: dict[tuple[str, ...], JoinedRelation]

    @staticmethod
    def _key(tables: Iterable[str]) -> tuple[str, ...]:
        return tuple(sorted(tables))

    @classmethod
    def capture(
        cls,
        database: Database,
        signatures: Iterable[Iterable[str]],
        *,
        join_cache: "JoinCache | None" = None,
    ) -> "BaseSnapshot":
        """Snapshot *database* with the joins for every given table signature.

        Joins come from *join_cache* when given (warm driver-side entries are
        reused, cold ones are built and cached for the driver too), otherwise
        from a throwaway cache.
        """
        cache = join_cache if join_cache is not None else JoinCache()
        joins: dict[tuple[str, ...], JoinedRelation] = {}
        for signature in signatures:
            key = cls._key(signature)
            if key and key not in joins:
                joins[key] = cache.join_for(database, key)
        return cls(database=database, joins=joins)

    @property
    def signatures(self) -> tuple[tuple[str, ...], ...]:
        """The join signatures the snapshot covers, deterministically ordered."""
        return tuple(sorted(self.joins))

    def covers(self, signatures: Iterable[Iterable[str]]) -> bool:
        """Whether every given signature has a snapshotted join."""
        return all(self._key(signature) in self.joins for signature in signatures)

    def restore(self) -> tuple[Database, "JoinCache"]:
        """Seed a fresh :class:`JoinCache` with the snapshotted joins.

        Returns the (worker-local, post-unpickling) database instance and the
        seeded cache; serving any snapshotted signature — or deriving a
        modified database from it — performs zero full joins.
        """
        cache = JoinCache()
        for signature, joined in self.joins.items():
            cache.adopt(self.database, signature, joined)
        return self.database, cache

    def advance(self, delta: "TupleDelta") -> None:
        """Advance the snapshot in place to the delta-modified database.

        The warm-pool round protocol: after a round, the driver publishes the
        winning attempt's :class:`~repro.relational.delta.TupleDelta` and each
        persistent worker advances its resident snapshot instead of receiving
        a fresh O(|D|) broadcast. Every snapshotted join is patched
        incrementally against the *current* base
        (:meth:`~repro.relational.join.JoinedRelation.apply_delta`,
        O(|Δ| · fanout) — never a full re-join), and only then is the delta
        applied to the base database **in place**, so the database instance
        keeps its identity.

        Identity-keyed caches around the snapshot (a :class:`JoinCache` that
        adopted the old joins, a :class:`SharedSnapshotCache` entry) observe
        the same database id with *replaced* join objects; callers must
        invalidate and re-adopt around this call, exactly as after any
        in-place base mutation.
        """
        advanced = {
            signature: joined.apply_delta(delta, self.database)
            for signature, joined in self.joins.items()
        }
        delta.apply_to(self.database)
        self.joins = advanced

    def to_bytes(self) -> bytes:
        """Pickle the snapshot (the payload broadcast to worker processes)."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BaseSnapshot":
        """Unpickle a snapshot previously produced by :meth:`to_bytes`."""
        snapshot = pickle.loads(payload)
        if not isinstance(snapshot, cls):
            raise TypeError(f"payload does not contain a {cls.__name__}")
        return snapshot

    def to_shared_memory(self) -> "SharedSnapshotHandle":
        """Export the snapshot into one shared-memory block.

        Layout: the snapshot pickle (which drops columnar views — see
        ``JoinedRelation.__getstate__``) at offset 0, followed by the raw
        typed-column buffers of every snapshotted join's columnar view
        (building any view not yet warm). Workers attach by block name and
        rebuild the views with one C-level ``frombytes`` copy per column —
        no per-column pickling, and the lazy view rebuild each worker would
        otherwise pay is skipped entirely.

        The returned handle owns the block: keep it alive while workers may
        attach, and :meth:`SharedSnapshotHandle.unlink` it when the snapshot
        is superseded. The manifest (``handle.manifest``) is the small
        picklable payload actually shipped to workers.
        """
        from multiprocessing import shared_memory

        pickled = self.to_bytes()
        views: list[tuple[tuple[str, ...], dict, int]] = []
        payloads: list[bytes] = []
        for signature in self.signatures:
            meta, buffers = self.joins[signature].columnar().export_columns()
            views.append((signature, meta, len(payloads)))
            payloads.extend(buffers)
        total = len(pickled) + sum(len(payload) for payload in payloads)
        block = shared_memory.SharedMemory(create=True, size=max(total, 1))
        block.buf[: len(pickled)] = pickled
        spans: list[tuple[int, int]] = []
        offset = len(pickled)
        for payload in payloads:
            block.buf[offset : offset + len(payload)] = payload
            spans.append((offset, len(payload)))
            offset += len(payload)
        manifest = {
            "name": block.name,
            "total": total,
            "pickle_length": len(pickled),
            "spans": spans,
            "views": views,
        }
        return SharedSnapshotHandle(manifest=manifest, block=block)

    @classmethod
    def from_shared_memory(cls, manifest: dict) -> "BaseSnapshot":
        """Attach a :meth:`to_shared_memory` export and rebuild the snapshot.

        Unpickles the snapshot from the mapped block, then rehydrates every
        join's columnar view from the raw buffers, so the restored snapshot
        is as warm as the driver's was (term-mask caches excepted — those
        never cross processes). The block is closed (never unlinked) before
        returning; buffer contents are copied out, so the attachment is not
        retained.
        """
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(name=manifest["name"], create=False)
        slices: list[memoryview] = []
        try:
            head = block.buf[: manifest["pickle_length"]]
            slices.append(head)
            snapshot = cls.from_bytes(bytes(head))
            spans = manifest["spans"]
            for signature, meta, payload_base in manifest["views"]:
                buffers: list[memoryview] = []
                payload_count = sum(1 for spec in meta["columns"] if "typed" in spec)
                for index in range(payload_count):
                    start, length = spans[payload_base + index]
                    view = block.buf[start : start + length]
                    slices.append(view)
                    buffers.append(view)
                columnar = ColumnarView.from_exported_columns(meta, buffers)
                snapshot.joins[tuple(signature)].adopt_columnar(columnar)
            return snapshot
        finally:
            for view in slices:
                view.release()
            block.close()


@dataclass
class SharedSnapshotHandle:
    """Owner handle for a shared-memory snapshot export.

    Holds the block open on the driver side; the picklable :attr:`manifest`
    is what gets shipped to workers. :meth:`unlink` releases the OS segment —
    call it exactly once, when no worker will attach again (workers only ever
    ``close`` their attachments).
    """

    manifest: dict
    block: Any

    @property
    def total_bytes(self) -> int:
        return int(self.manifest["total"])

    def unlink(self) -> None:
        """Close and remove the shared-memory segment (idempotent)."""
        block, self.block = self.block, None
        if block is None:
            return
        try:
            block.close()
        finally:
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already removed
                pass


class SharedSnapshotCache:
    """Memoizes one :class:`BaseSnapshot` per live base database.

    A single QFE session re-captures its base snapshot only when the base
    state changes; a *service* hosting many sessions over the same example
    database must additionally share the captured snapshot **across**
    sessions, or every session switch would re-broadcast a fresh (identical)
    snapshot to the shared worker pool. This cache provides that sharing:
    sessions whose round planners hold the same cache — and evaluate against
    the same base database instance — receive the *same snapshot object*,
    which is exactly the identity the
    :class:`~repro.core.execution_backend.ProcessPoolBackend` keys its
    seed-once broadcast on.

    A memoized snapshot is reused only while it is *current*:

    * it was captured from the same live database instance (weakref-guarded,
      so a recycled ``id`` can never alias a dead database's snapshot);
    * it covers every requested join signature; and
    * it holds the very join objects the given :class:`JoinCache` currently
      serves — if the caller mutated the base in place and honoured the cache
      contract (``join_cache.invalidate``), the cache rebuilt fresh joins and
      the stale snapshot is dropped, forcing a re-capture (and, downstream, a
      re-broadcast to any worker pool).

    When a new signature set extends a still-current snapshot, the union of
    old and new signatures is captured so sessions with different candidate
    sets over one base never thrash each other's entry. All operations are
    thread-safe: the service layer proposes rounds from multiple sessions
    concurrently.

    Lifetime contract: a memoized snapshot strongly references its base
    database (it must — the snapshot is the picklable broadcast payload), so
    an entry **pins the base alive** until :meth:`evict` or :meth:`clear` is
    called. A cache owned by one planner simply dies with it; a long-lived
    shared cache (the session service) must evict alongside whatever
    base-lifetime bookkeeping it keeps — the
    :class:`~repro.service.manager.SessionManager` evicts a pair's snapshot
    when it prunes the pair. Because entries hold their database alive, a
    recycled ``id`` can never alias a dead database's snapshot.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._snapshots: dict[int, BaseSnapshot] = {}

    def _is_current(
        self,
        snapshot: BaseSnapshot | None,
        database: Database,
        signatures: Sequence[tuple[str, ...]],
        join_cache: "JoinCache",
    ) -> bool:
        if snapshot is None or snapshot.database is not database:
            return False
        if not snapshot.covers(signatures):
            return False
        return all(
            join_cache.join_for(database, signature)
            is snapshot.joins[BaseSnapshot._key(signature)]
            for signature in signatures
        )

    def snapshot_for(
        self,
        database: Database,
        signatures: Sequence[Iterable[str]],
        join_cache: "JoinCache",
    ) -> BaseSnapshot:
        """The memoized (or freshly captured) snapshot covering *signatures*."""
        keys = tuple(BaseSnapshot._key(signature) for signature in signatures)
        with self._lock:
            database_id = id(database)
            snapshot = self._snapshots.get(database_id)
            if self._is_current(snapshot, database, keys, join_cache):
                return snapshot
            capture_keys = set(keys)
            if snapshot is not None and snapshot.database is database:
                # Joins still identity-current for the *old* coverage are kept
                # so alternating signature sets extend instead of thrash.
                capture_keys.update(
                    key
                    for key in snapshot.signatures
                    if self._is_current(snapshot, database, (key,), join_cache)
                )
            snapshot = BaseSnapshot.capture(
                database, sorted(capture_keys), join_cache=join_cache
            )
            self._snapshots[database_id] = snapshot
            return snapshot

    def evict(self, database: Database) -> bool:
        """Drop the memoized snapshot of *database*; returns whether one existed.

        Required whenever a long-lived shared cache stops serving a base
        database (the entry would otherwise pin the database — and its
        joins — alive forever).
        """
        with self._lock:
            return self._snapshots.pop(id(database), None) is not None

    @property
    def snapshot_count(self) -> int:
        """Number of live memoized snapshots (diagnostics and tests)."""
        with self._lock:
            return len(self._snapshots)

    def clear(self) -> None:
        """Drop every memoized snapshot."""
        with self._lock:
            self._snapshots.clear()


class JoinCache:
    """Caches materialized joins — and their columnar views — per database.

    QFE evaluates every surviving candidate on each newly generated modified
    database; candidates share at most a handful of distinct join schemas, so
    caching the join per database instance removes the dominant recomputation.
    Each cached :class:`JoinedRelation` lazily carries a
    :class:`~repro.relational.columnar.ColumnarView` whose term-mask cache is
    shared by every candidate evaluated through the cache.

    The cache is keyed on ``id(database)``. A weakref finalizer evicts all of
    a database's entries the moment the instance is garbage-collected, so a
    recycled id can never alias a dead database's joins — a long-lived cache
    (e.g. on a reused :class:`~repro.core.database_generator.DatabaseGenerator`)
    stays correct across many database instances. What the cache cannot see
    is *in-place modification* of a live database it holds joins for; call
    :meth:`invalidate` in that case and the stale join and its columnar view
    are dropped together (QFE itself always works on fresh copies).

    **Delta derivation.** :meth:`derive` registers a modified copy ``D'`` as
    a delta-derived child of its base ``D``. Any join subsequently requested
    for ``D'`` is produced by patching the base's cached join through
    :meth:`JoinedRelation.apply_delta` — sharing unmodified tuples, columns
    and term masks copy-on-write — instead of re-joining ``D'`` from scratch.
    Derived entries are evicted together with their base: invalidating or
    garbage-collecting ``D`` drops every entry derived from it (the derived
    state was patched out of the base entry, so it must not outlive it).
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[int, tuple[str, ...]], JoinedRelation] = {}
        self._finalizers: dict[int, weakref.finalize] = {}
        #: derived database id -> (base database id, weakref to base, delta)
        self._links: dict[int, tuple[int, weakref.ref, Any]] = {}
        #: base database id -> ids of databases derived from it
        self._children: dict[int, set[int]] = {}

    def join_for(self, database: Database, tables: Iterable[str]) -> JoinedRelation:
        """Return (and memoize) the foreign-key join of *tables* on *database*.

        For a database registered through :meth:`derive`, the join is derived
        incrementally from the base database's cached join instead of being
        rebuilt cold.
        """
        key = (id(database), tuple(sorted(tables)))
        if key not in self._cache:
            self._cache[key] = self._build_entry(database, tables)
            self._watch(database)
        return self._cache[key]

    def adopt(self, database: Database, tables: Iterable[str], joined: JoinedRelation) -> None:
        """Seed the cache with an externally materialized join for *database*.

        Used when rehydrating a :class:`BaseSnapshot` in a worker process:
        the snapshotted join is installed directly under its signature, so a
        later :meth:`join_for` (or a delta derivation hanging off it) never
        pays a full join. The usual finalizer-based eviction applies.
        """
        key = (id(database), tuple(sorted(tables)))
        self._cache[key] = joined
        self._watch(database)

    def _build_entry(self, database: Database, tables: Iterable[str]) -> JoinedRelation:
        link = self._links.get(id(database))
        if link is not None:
            _, base_ref, delta = link
            base = base_ref()
            if base is not None:
                return self.join_for(base, tables).apply_delta(delta, base)
        return foreign_key_join(database, list(tables))

    def derive(
        self,
        base: Database,
        delta: "TupleDelta",
        derived: Database,
        tables: Iterable[str] | None = None,
    ) -> JoinedRelation | None:
        """Register *derived* as the delta-modified copy of *base*.

        Every join the cache later serves for *derived* is patched out of the
        corresponding (cached, possibly warm) join of *base* via
        :meth:`JoinedRelation.apply_delta`, per join signature on demand.
        When *tables* is given the entry for that signature is derived
        eagerly and returned. The lifetime of derived entries is tied to the
        base: :meth:`invalidate` on (or garbage collection of) *base* evicts
        them, and the link itself dies with either database.
        """
        base_id, derived_id = id(base), id(derived)
        if base_id == derived_id:
            raise ValueError("cannot derive a database from itself")
        with get_tracer().span("join.derive", eager=tables is not None):
            self._links[derived_id] = (base_id, weakref.ref(base), delta)
            self._children.setdefault(base_id, set()).add(derived_id)
            self._watch(base)
            self._watch(derived)
            if tables is not None:
                return self.join_for(derived, tables)
            return None

    def _watch(self, database: Database) -> None:
        """Evict the database's entries when it is deallocated (id-reuse guard)."""
        database_id = id(database)
        if database_id in self._finalizers:
            return
        cache_ref = weakref.ref(self)  # the finalizer must not keep the cache alive

        def evict(database_id: int = database_id) -> None:
            cache = cache_ref()
            if cache is not None:
                cache._drop(database_id)

        self._finalizers[database_id] = weakref.finalize(database, evict)

    def _drop(self, database_id: int) -> None:
        finalizer = self._finalizers.pop(database_id, None)
        if finalizer is not None:
            finalizer.detach()
        # Sever the derived-from link if this database was itself derived.
        link = self._links.pop(database_id, None)
        if link is not None:
            siblings = self._children.get(link[0])
            if siblings is not None:
                siblings.discard(database_id)
                if not siblings:
                    del self._children[link[0]]
        # Derived entries were patched out of this database's entries (sharing
        # columns and masks copy-on-write); evict them alongside their base.
        for child_id in self._children.pop(database_id, ()):
            self._drop(child_id)
        stale = [key for key in self._cache if key[0] == database_id]
        for key in stale:
            self._cache.pop(key).invalidate_columnar()

    def columnar_for(self, database: Database, tables: Iterable[str]) -> ColumnarView:
        """The columnar view (with shared term-mask cache) of a cached join."""
        return self.join_for(database, tables).columnar()

    def evaluate(self, query: SPJQuery, database: Database, *, name: str = "Result") -> Relation:
        """Evaluate an SPJ query using the cached join for its table set."""
        query.validate(database.schema)
        joined = self.join_for(database, query.tables)
        return evaluate_on_join(query, joined, database, name=name)

    def evaluate_batch(
        self,
        queries: Sequence[SPJQuery],
        database: Database,
        *,
        set_semantics: bool = False,
        name: str = "Result",
        with_fingerprints: bool = True,
    ) -> BatchEvaluation:
        """Evaluate all *queries* on *database*, one shared pass per join schema.

        Queries are grouped by their join signature; each group is evaluated
        through :func:`evaluate_batch` over the cached join, so term masks,
        result materialization and fingerprints are shared within each group.
        Results come back in the order of *queries*.
        """
        results: list[Relation | None] = [None] * len(queries)
        fingerprints: list[Any] = [None] * len(queries)
        by_signature: dict[tuple[str, ...], list[int]] = {}
        for index, query in enumerate(queries):
            query.validate(database.schema)
            by_signature.setdefault(query.join_signature, []).append(index)
        for signature, indexes in by_signature.items():
            joined = self.join_for(database, signature)
            batch = evaluate_batch(
                [queries[i] for i in indexes],
                joined,
                database,
                set_semantics=set_semantics,
                name=name,
                with_fingerprints=with_fingerprints,
            )
            for local, index in enumerate(indexes):
                results[index] = batch.results[local]
                if with_fingerprints:
                    fingerprints[index] = batch.fingerprints[local]
        return BatchEvaluation(
            results=tuple(results),  # type: ignore[arg-type]
            fingerprints=tuple(fingerprints) if with_fingerprints else None,
        )

    def invalidate(self, database: Database) -> None:
        """Drop every cached join (and columnar view) of *database*.

        Must be called when a database instance that joins were cached for is
        modified in place, so later evaluations rebuild from the new contents.
        Entries delta-derived *from* this database are evicted with it — they
        share patched state with the base entries and must not outlive them.
        (Deallocation is handled automatically by a weakref finalizer.)
        """
        self._drop(id(database))

    @property
    def cached_join_count(self) -> int:
        """Number of joins currently cached (diagnostics and tests)."""
        return len(self._cache)

    @property
    def derived_link_count(self) -> int:
        """Number of live delta-derivation links (diagnostics and tests)."""
        return len(self._links)

    def memory_report(self) -> dict:
        """Aggregate storage footprint of every cached join's columnar view.

        Only views that were already built are counted — reporting never
        forces a build — and a join adopted under several cache keys is
        counted once. The per-view entries carry the join signature plus the
        :meth:`~repro.relational.columnar.ColumnarView.memory_report`
        breakdown, so sessions (and the scenario sweep) can attribute the
        resident typed-buffer bytes to the joins that own them.
        """
        views: list[dict] = []
        seen: set[int] = set()
        for (database_id, signature), joined in sorted(
            self._cache.items(), key=lambda item: (item[0][1], item[0][0])
        ):
            if id(joined) in seen:
                continue
            seen.add(id(joined))
            report = joined.columnar_memory_report()
            if report is None:
                continue
            views.append({"signature": list(signature), **report})
        total_bytes = sum(view["total_bytes"] for view in views)
        total_rows = sum(view["row_count"] for view in views)
        return {
            "view_count": len(views),
            "total_bytes": total_bytes,
            "joined_rows": total_rows,
            "bytes_per_joined_row": (total_bytes / total_rows) if total_rows else None,
            "views": views,
        }

    def clear(self) -> None:
        """Drop all cached joins and delta-derivation links."""
        for finalizer in self._finalizers.values():
            finalizer.detach()
        self._finalizers.clear()
        self._cache.clear()
        self._links.clear()
        self._children.clear()
