"""Query evaluation for SPJ and SPJU queries.

The evaluator executes queries against a :class:`~repro.relational.database.Database`
by materializing the foreign-key join of the query's tables and then applying
the selection predicate and the projection. For the QFE inner loops — which
evaluate many candidate queries over the *same* join — the evaluator also
accepts a pre-joined :class:`~repro.relational.join.JoinedRelation` so the
join is computed once per database instance.

Bag semantics (duplicate-preserving) is the default, matching the paper's
Section 5 assumption; ``distinct=True`` on a query switches to set semantics
(Section 6.1).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.exceptions import UnsupportedQueryError
from repro.relational.database import Database
from repro.relational.join import JoinedRelation, foreign_key_join
from repro.relational.query import SPJQuery, SPJUQuery
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, TableSchema

__all__ = [
    "evaluate",
    "evaluate_on_join",
    "result_schema",
    "results_equal",
    "result_fingerprint",
    "JoinCache",
]


def result_schema(query: SPJQuery, database: Database, *, name: str = "Result") -> TableSchema:
    """The schema of the query's output relation (qualified projection names)."""
    attributes: list[Attribute] = []
    for qualified in query.projection:
        table, _, column = qualified.partition(".")
        declared = database.schema.table(table).attribute(column)
        attributes.append(Attribute(qualified, declared.type, declared.nullable))
    return TableSchema(name, attributes)


def evaluate(query: SPJQuery | SPJUQuery, database: Database, *, name: str = "Result") -> Relation:
    """Execute *query* on *database* and return its result relation."""
    if isinstance(query, SPJUQuery):
        return _evaluate_union(query, database, name=name)
    query.validate(database.schema)
    joined = foreign_key_join(database, query.tables)
    return evaluate_on_join(query, joined, database, name=name)


def evaluate_on_join(
    query: SPJQuery,
    joined: JoinedRelation,
    database: Database,
    *,
    name: str = "Result",
) -> Relation:
    """Execute an SPJ query against a pre-materialized join of its tables.

    The join must cover every table the query references (a superset join is
    allowed, which is how QFE evaluates all candidates over the single full
    foreign-key join ``T``).
    """
    missing = set(query.tables) - set(joined.tables)
    if missing:
        raise UnsupportedQueryError(
            f"pre-joined relation lacks tables {sorted(missing)} required by the query"
        )
    schema = result_schema(query, database, name=name)
    output = Relation(schema)
    names = joined.relation.schema.attribute_names
    projection_positions = [joined.relation.schema.index_of(a) for a in query.projection]
    predicate = query.predicate
    seen: set[tuple] = set()
    for row_tuple in joined.relation.tuples:
        row = dict(zip(names, row_tuple.values))
        if not predicate.evaluate_row(row):
            continue
        projected = tuple(row_tuple.values[p] for p in projection_positions)
        if query.distinct:
            key = _normalize(projected)
            if key in seen:
                continue
            seen.add(key)
        output.insert(projected)
    return output


def _evaluate_union(query: SPJUQuery, database: Database, *, name: str) -> Relation:
    query.validate(database.schema)
    first = evaluate(query.branches[0], database, name=name)
    output = Relation(first.schema)
    seen: set[tuple] = set()
    for branch in query.branches:
        branch_result = evaluate(branch, database, name=name)
        for row in branch_result.rows():
            if query.distinct:
                key = _normalize(row)
                if key in seen:
                    continue
                seen.add(key)
            output.insert(row)
    return output


def _normalize(row: Iterable[Any]) -> tuple:
    return tuple(
        float(v) if isinstance(v, (int, float)) and not isinstance(v, bool) else v
        for v in row
    )


def results_equal(left: Relation, right: Relation, *, set_semantics: bool = False) -> bool:
    """Whether two result relations are equal under bag (default) or set semantics."""
    if set_semantics:
        return left.set_equal(right)
    return left.bag_equal(right)


def result_fingerprint(result: Relation, *, set_semantics: bool = False) -> frozenset | tuple:
    """A hashable fingerprint of a result used to group equivalent candidate queries."""
    if set_semantics:
        return result.set_of_rows()
    return tuple(sorted(result.bag_of_rows().items(), key=lambda item: tuple(map(_sort_key, item[0]))))


def _sort_key(value: Any) -> tuple:
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, str(int(value)))
    if isinstance(value, (int, float)):
        return (2, f"{float(value):030.10f}")
    return (3, str(value))


class JoinCache:
    """Caches materialized joins per (database identity, table set).

    QFE evaluates every surviving candidate on each newly generated modified
    database; candidates share at most a handful of distinct join schemas, so
    caching the join per database instance removes the dominant recomputation.
    The cache is keyed on ``id(database)`` and therefore must only be used
    while the database instance is not mutated (QFE always works on copies).
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[int, tuple[str, ...]], JoinedRelation] = {}

    def join_for(self, database: Database, tables: Iterable[str]) -> JoinedRelation:
        """Return (and memoize) the foreign-key join of *tables* on *database*."""
        key = (id(database), tuple(sorted(tables)))
        if key not in self._cache:
            self._cache[key] = foreign_key_join(database, list(tables))
        return self._cache[key]

    def evaluate(self, query: SPJQuery, database: Database, *, name: str = "Result") -> Relation:
        """Evaluate an SPJ query using the cached join for its table set."""
        query.validate(database.schema)
        joined = self.join_for(database, query.tables)
        return evaluate_on_join(query, joined, database, name=name)

    def clear(self) -> None:
        """Drop all cached joins."""
        self._cache.clear()
