"""Selection predicates in disjunctive normal form (DNF).

The paper's candidate queries are of the form ``π_ℓ(σ_p(J))`` where ``p`` is
in DNF: ``p = p_1 ∨ ... ∨ p_m`` and each ``p_i`` is a conjunction of *terms*,
each term comparing an attribute against a constant (Section 4).

This module provides the predicate algebra used across the library:

* :class:`Term` — ``attribute op constant`` where ``op`` is one of
  ``= ≠ < ≤ > ≥ IN NOT IN``;
* :class:`Conjunct` — a conjunction of terms;
* :class:`DNFPredicate` — a disjunction of conjuncts (an empty disjunction is
  the always-true predicate, matching an unrestricted SPJ query).

Terms can be evaluated against a single value, against a named row (a mapping
from qualified attribute names to values), and — crucially for the tuple-class
machinery of Section 5.1 — against a *set of values at once* via
:meth:`Term.satisfied_by_all` / :meth:`Term.satisfied_by_none`, and they can
report the numeric *breakpoints* they induce on an ordered domain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.exceptions import EvaluationError
from repro.relational.types import float_literal

__all__ = [
    "ComparisonOp",
    "ORDERING_OPS",
    "MEMBERSHIP_OPS",
    "Term",
    "Conjunct",
    "DNFPredicate",
    "always_true",
    "compile_term",
    "compile_predicate",
]


class ComparisonOp(enum.Enum):
    """Comparison operators allowed in selection terms."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "IN"
    NOT_IN = "NOT IN"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_ordering(self) -> bool:
        """Whether the operator relies on an ordered domain."""
        return self in ORDERING_OPS

    @property
    def is_membership(self) -> bool:
        """Whether the operator compares against a set of constants."""
        return self in MEMBERSHIP_OPS

    def negate(self) -> "ComparisonOp":
        """The complementary operator (used by query mutation)."""
        return {
            ComparisonOp.EQ: ComparisonOp.NE,
            ComparisonOp.NE: ComparisonOp.EQ,
            ComparisonOp.LT: ComparisonOp.GE,
            ComparisonOp.LE: ComparisonOp.GT,
            ComparisonOp.GT: ComparisonOp.LE,
            ComparisonOp.GE: ComparisonOp.LT,
            ComparisonOp.IN: ComparisonOp.NOT_IN,
            ComparisonOp.NOT_IN: ComparisonOp.IN,
        }[self]


#: Operators that rely on an ordered domain — the ones the typed columnar
#: layer can serve from zone maps and the sorted term index, and the ones
#: whose compiled tests may raise on cross-type comparisons.
ORDERING_OPS = frozenset(
    {ComparisonOp.LT, ComparisonOp.LE, ComparisonOp.GT, ComparisonOp.GE}
)

#: Operators that compare against a set of constants.
MEMBERSHIP_OPS = frozenset({ComparisonOp.IN, ComparisonOp.NOT_IN})


# Ordering comparisons use Python's exact cross-type ``<``/``<=`` on raw
# values: ``int`` vs ``float`` compares true mathematical values, so there is
# deliberately no ``float()`` normalization step — a round-trip through a
# double would make ``2**53 + 1 > 2**53`` evaluate False.


@dataclass(frozen=True)
class Term:
    """A single comparison ``attribute op constant`` (or ``attribute IN {..}``)."""

    attribute: str
    op: ComparisonOp
    constant: Any

    def __post_init__(self) -> None:
        if self.op.is_membership:
            values = tuple(self.constant) if isinstance(self.constant, Iterable) and not isinstance(self.constant, str) else (self.constant,)
            object.__setattr__(self, "constant", tuple(values))

    # ---------------------------------------------------------------- evaluate
    def evaluate_value(self, value: Any) -> bool:
        """Evaluate the term against a single attribute value.

        NULL never satisfies any comparison (SQL three-valued logic collapsed
        to "not selected", which is the behaviour of ``WHERE``).
        """
        if value is None:
            return False
        if self.op is ComparisonOp.IN:
            return any(_safe_eq(value, c) for c in self.constant)
        if self.op is ComparisonOp.NOT_IN:
            return not any(_safe_eq(value, c) for c in self.constant)
        if self.op is ComparisonOp.EQ:
            return _safe_eq(value, self.constant)
        if self.op is ComparisonOp.NE:
            return not _safe_eq(value, self.constant)
        left = value
        right = self.constant
        try:
            if self.op is ComparisonOp.LT:
                return left < right
            if self.op is ComparisonOp.LE:
                return left <= right
            if self.op is ComparisonOp.GT:
                return left > right
            if self.op is ComparisonOp.GE:
                return left >= right
        except TypeError as exc:
            raise EvaluationError(
                f"cannot compare {value!r} {self.op.value} {self.constant!r}"
            ) from exc
        raise EvaluationError(f"unsupported operator {self.op!r}")  # pragma: no cover

    def evaluate_row(self, row: Mapping[str, Any]) -> bool:
        """Evaluate against a row given as a mapping of attribute name to value."""
        if self.attribute not in row:
            raise EvaluationError(f"row has no attribute {self.attribute!r}")
        return self.evaluate_value(row[self.attribute])

    def satisfied_by_all(self, values: Iterable[Any]) -> bool:
        """Whether every value in *values* satisfies the term."""
        return all(self.evaluate_value(v) for v in values)

    def satisfied_by_none(self, values: Iterable[Any]) -> bool:
        """Whether no value in *values* satisfies the term."""
        return not any(self.evaluate_value(v) for v in values)

    # ------------------------------------------------------------- structure
    def constants(self) -> tuple[Any, ...]:
        """All constants mentioned by the term."""
        if self.op.is_membership:
            return tuple(self.constant)
        return (self.constant,)

    def numeric_breakpoints(self) -> list[tuple[float, bool]]:
        """Breakpoints this term induces on an ordered domain.

        Each breakpoint is ``(value, boundary_belongs_to_lower_side)``: the
        domain is cut *after* ``value`` when the flag is true (as for ``<=``
        and ``>``), and *before* ``value`` when false (as for ``<`` and
        ``>=``). Equality terms induce cuts on both sides of the constant.
        """
        cuts: list[tuple[float, bool]] = []
        for constant in self.constants():
            if isinstance(constant, bool) or not isinstance(constant, (int, float)):
                continue
            # Keep integer constants exact: converting to float here would
            # merge breakpoints at neighbouring integers ≥ 2^53.
            value = constant
            if self.op in (ComparisonOp.LE, ComparisonOp.GT):
                cuts.append((value, True))
            elif self.op in (ComparisonOp.LT, ComparisonOp.GE):
                cuts.append((value, False))
            else:  # EQ / NE / IN / NOT IN isolate the exact value
                cuts.append((value, False))
                cuts.append((value, True))
        return cuts

    def with_constant(self, constant: Any) -> "Term":
        """A copy of the term with a different constant (used by mutation)."""
        return Term(self.attribute, self.op, constant)

    def mask_key(self) -> tuple:
        """A hashable identity for sharing column masks between candidates.

        Exactly-equal numeric constants are collapsed (``salary > 60`` and
        ``salary > 60.0`` select the same rows and share one cached mask per
        columnar view) without any precision loss: distinct large integers
        keep distinct keys, and boolean constants never alias numeric ones.
        """
        constant = self.constant
        if self.op.is_membership:
            normalized: Any = tuple(_normalize_constant(c) for c in constant)
        else:
            normalized = _normalize_constant(constant)
        return (self.attribute, self.op.value, normalized)

    def __str__(self) -> str:
        if self.op.is_membership:
            inner = ", ".join(_format_constant(c) for c in self.constant)
            return f"{self.attribute} {self.op.value} ({inner})"
        return f"{self.attribute} {self.op.value} {_format_constant(self.constant)}"


def _safe_eq(left: Any, right: Any) -> bool:
    # Python's ``==`` already compares int/float by exact mathematical value
    # and never equates numbers with strings; routing numerics through
    # ``float()`` (as earlier versions did) corrupted integers ≥ 2^53, making
    # distinct large constants compare equal. Booleans compare by their
    # numeric value (``True == 1``), matching SQLite's integer encoding.
    return left == right


def _format_constant(constant: Any) -> str:
    if isinstance(constant, str):
        escaped = constant.replace("'", "''")
        return f"'{escaped}'"
    if constant is None:
        return "NULL"
    if isinstance(constant, bool):
        return "TRUE" if constant else "FALSE"
    if isinstance(constant, float):
        # Round-trip precision: "{:g}" keeps only 6 significant digits, so a
        # predicate printed and re-parsed (or shipped to a SQL oracle) would
        # select different rows than the in-memory term.
        return float_literal(constant)
    return str(constant)


@dataclass(frozen=True)
class Conjunct:
    """A conjunction of terms (one disjunct of a DNF predicate)."""

    terms: tuple[Term, ...]

    def __init__(self, terms: Iterable[Term]) -> None:
        object.__setattr__(self, "terms", tuple(terms))

    def evaluate_row(self, row: Mapping[str, Any]) -> bool:
        """True when every term is satisfied (an empty conjunct is true)."""
        return all(term.evaluate_row(row) for term in self.terms)

    def attributes(self) -> tuple[str, ...]:
        """Attributes mentioned, in first-appearance order."""
        return tuple(dict.fromkeys(term.attribute for term in self.terms))

    def terms_on(self, attribute: str) -> tuple[Term, ...]:
        """Terms constraining the given attribute."""
        return tuple(term for term in self.terms if term.attribute == attribute)

    def __len__(self) -> int:
        return len(self.terms)

    def __str__(self) -> str:
        if not self.terms:
            return "TRUE"
        return " AND ".join(str(term) for term in self.terms)


class DNFPredicate:
    """A disjunction of conjuncts; the empty disjunction is always true."""

    __slots__ = ("conjuncts",)

    def __init__(self, conjuncts: Iterable[Conjunct] = ()) -> None:
        self.conjuncts: tuple[Conjunct, ...] = tuple(conjuncts)

    # ----------------------------------------------------------- construction
    @classmethod
    def from_terms(cls, terms: Iterable[Term]) -> "DNFPredicate":
        """A predicate that is a single conjunction of *terms*."""
        return cls((Conjunct(terms),))

    @classmethod
    def true(cls) -> "DNFPredicate":
        """The always-true predicate."""
        return cls(())

    # --------------------------------------------------------------- evaluate
    def evaluate_row(self, row: Mapping[str, Any]) -> bool:
        """True when any conjunct is satisfied (or there are no conjuncts)."""
        if not self.conjuncts:
            return True
        return any(conjunct.evaluate_row(row) for conjunct in self.conjuncts)

    # -------------------------------------------------------------- structure
    @property
    def is_true(self) -> bool:
        """Whether this is the unrestricted (always-true) predicate."""
        return not self.conjuncts

    def attributes(self) -> tuple[str, ...]:
        """All attributes mentioned across conjuncts, in first-appearance order."""
        ordered: dict[str, None] = {}
        for conjunct in self.conjuncts:
            for attribute in conjunct.attributes():
                ordered.setdefault(attribute, None)
        return tuple(ordered)

    def terms(self) -> tuple[Term, ...]:
        """All terms across all conjuncts."""
        return tuple(term for conjunct in self.conjuncts for term in conjunct.terms)

    def terms_on(self, attribute: str) -> tuple[Term, ...]:
        """All terms constraining the given attribute."""
        return tuple(term for term in self.terms() if term.attribute == attribute)

    def term_count(self) -> int:
        """Total number of terms (used by the QBO search-space limits)."""
        return sum(len(conjunct) for conjunct in self.conjuncts)

    def canonical_key(self) -> tuple:
        """A hashable, order-insensitive key for deduplicating predicates.

        Terms within a conjunct and conjuncts within the disjunction are
        sorted by a deterministic textual form, so logically identical
        predicates written in different orders compare (and hash) equal.
        """
        conjunct_keys = []
        for conjunct in self.conjuncts:
            term_keys = tuple(
                sorted(repr((t.attribute, t.op.value, t.constants())) for t in conjunct.terms)
            )
            conjunct_keys.append(term_keys)
        return tuple(sorted(conjunct_keys))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DNFPredicate):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __str__(self) -> str:
        if not self.conjuncts:
            return "TRUE"
        if len(self.conjuncts) == 1:
            return str(self.conjuncts[0])
        return " OR ".join(f"({conjunct})" for conjunct in self.conjuncts)


def always_true() -> DNFPredicate:
    """Convenience constructor for the unrestricted predicate."""
    return DNFPredicate.true()


# ------------------------------------------------------------------ compilation
#
# The QFE inner loops evaluate the same small set of terms against thousands of
# rows (and the same rows against dozens of candidate predicates). Compiling a
# term into a single-argument closure hoists every constant-side type check out
# of the per-value hot path; compiling a predicate against a name→position map
# removes the per-row dict construction the row-at-a-time evaluator needed.
# Compiled forms are behaviourally identical to ``Term.evaluate_value`` /
# ``DNFPredicate.evaluate_row`` (NULL never satisfies a comparison, numeric
# values compare as floats, incomparable values raise ``EvaluationError``).


def _normalize_constant(constant: Any) -> Any:
    # Cache-key normalization must collapse *exactly equal* numeric constants
    # (``60`` and ``60.0`` select the same rows) without ever identifying
    # distinct ones: an integral float collapses onto the equal int, large
    # integers stay exact (a ``float()`` round-trip would alias 2^53 ± 1 in
    # the term-mask cache), and bools keep their own identity so ``x = TRUE``
    # never shares a cache entry with ``x = 1``.
    if isinstance(constant, bool):
        return (bool, constant)
    if isinstance(constant, float) and constant.is_integer():
        return int(constant)
    return constant


def _compile_membership(term: Term) -> Callable[[Any], bool]:
    constants = tuple(term.constant)
    negate = term.op is ComparisonOp.NOT_IN

    def member(value: Any) -> bool:
        if value is None:
            return False
        hit = any(_safe_eq(value, c) for c in constants)
        return (not hit) if negate else hit

    return member


def _compile_equality(term: Term) -> Callable[[Any], bool]:
    # ``==`` on raw values is already exact across int/float (and bools
    # compare by numeric value, as in SQLite); the old ``float()`` fast path
    # silently equated distinct integers ≥ 2^53.
    constant = term.constant
    negate = term.op is ComparisonOp.NE

    def equal(value: Any) -> bool:
        if value is None:
            return False
        hit = value == constant
        return (not hit) if negate else hit

    return equal


def _compile_ordering(term: Term) -> Callable[[Any], bool]:
    op = term.op
    constant = term.constant
    right = constant

    def compare(value: Any) -> bool:
        if value is None:
            return False
        left = value
        try:
            if op is ComparisonOp.LT:
                return left < right
            if op is ComparisonOp.LE:
                return left <= right
            if op is ComparisonOp.GT:
                return left > right
            return left >= right
        except TypeError as exc:
            raise EvaluationError(
                f"cannot compare {value!r} {op.value} {constant!r}"
            ) from exc

    return compare


@lru_cache(maxsize=8192)
def _compile_term_cached(term: Term) -> Callable[[Any], bool]:
    return _compile_term(term)


def _compile_term(term: Term) -> Callable[[Any], bool]:
    if term.op.is_membership:
        return _compile_membership(term)
    if term.op in (ComparisonOp.EQ, ComparisonOp.NE):
        return _compile_equality(term)
    return _compile_ordering(term)


def compile_term(term: Term) -> Callable[[Any], bool]:
    """Compile *term* into a ``value -> bool`` closure.

    The closure is memoized per term (terms are immutable value objects), so
    the many QBO-generated candidates that share terms compile each distinct
    term once per process. Terms with unhashable constants — which the
    row-at-a-time interpreter accepted — compile uncached.
    """
    try:
        return _compile_term_cached(term)
    except TypeError:
        return _compile_term(term)


def compile_predicate(
    predicate: DNFPredicate, index_of: Mapping[str, int]
) -> Callable[[Sequence[Any]], bool]:
    """Compile a DNF predicate into a positional ``row values -> bool`` closure.

    *index_of* maps qualified attribute names to positions in the row value
    sequence the closure will be applied to. Unknown attributes raise
    :class:`EvaluationError` at compile time rather than per row.
    """
    if predicate.is_true:
        return lambda values: True
    compiled_conjuncts: list[tuple[tuple[int, Callable[[Any], bool]], ...]] = []
    for conjunct in predicate.conjuncts:
        compiled_terms = []
        for term in conjunct.terms:
            try:
                position = index_of[term.attribute]
            except KeyError:
                raise EvaluationError(f"row has no attribute {term.attribute!r}") from None
            compiled_terms.append((position, compile_term(term)))
        compiled_conjuncts.append(tuple(compiled_terms))

    def evaluate_positional(values: Sequence[Any]) -> bool:
        for terms in compiled_conjuncts:
            for position, test in terms:
                if not test(values[position]):
                    break
            else:
                return True
        return False

    return evaluate_positional
