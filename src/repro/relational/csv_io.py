"""CSV import/export for relations and databases.

SQLShare-style workflows start from uploaded CSV files; this module lets the
examples and tests round-trip relations through CSV with type inference so a
user can point QFE at their own data.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, ForeignKey

__all__ = [
    "parse_csv_value",
    "relation_from_csv_text",
    "relation_from_csv_file",
    "relation_to_csv_text",
    "relation_to_csv_file",
    "database_to_csv_directory",
    "database_from_csv_directory",
]


def parse_csv_value(text: str) -> Any:
    """Parse a CSV cell into ``None``, bool, int, float or str (in that order)."""
    stripped = text.strip()
    if stripped == "" or stripped.upper() == "NULL":
        return None
    lowered = stripped.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return stripped


def relation_from_csv_text(
    name: str,
    text: str,
    *,
    primary_key: Sequence[str] | None = None,
) -> Relation:
    """Build a relation from CSV text whose first row is the header."""
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        raise SchemaError("CSV input must contain at least a header row")
    header = [column.strip() for column in rows[0]]
    data = [[parse_csv_value(cell) for cell in row] for row in rows[1:]]
    return Relation.from_rows(name, header, data, primary_key=primary_key)


def relation_from_csv_file(
    path: str | Path,
    *,
    name: str | None = None,
    primary_key: Sequence[str] | None = None,
) -> Relation:
    """Build a relation from a CSV file (relation name defaults to the file stem)."""
    path = Path(path)
    return relation_from_csv_text(
        name or path.stem, path.read_text(encoding="utf-8"), primary_key=primary_key
    )


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def relation_to_csv_text(relation: Relation) -> str:
    """Serialize a relation to CSV text with a header row."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(relation.schema.attribute_names)
    for row in relation.rows():
        writer.writerow([_format_cell(value) for value in row])
    return buffer.getvalue()


def relation_to_csv_file(relation: Relation, path: str | Path) -> None:
    """Write a relation to a CSV file."""
    Path(path).write_text(relation_to_csv_text(relation), encoding="utf-8")


def database_to_csv_directory(database: Database, directory: str | Path) -> None:
    """Write every relation of the database as ``<table>.csv`` under *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for relation in database:
        relation_to_csv_file(relation, directory / f"{relation.name}.csv")


def database_from_csv_directory(
    directory: str | Path,
    *,
    foreign_keys: Iterable[ForeignKey] = (),
    primary_keys: Mapping[str, Sequence[str]] | None = None,
) -> Database:
    """Load every ``*.csv`` file under *directory* as one relation per file."""
    directory = Path(directory)
    primary_keys = primary_keys or {}
    relations = {}
    for path in sorted(directory.glob("*.csv")):
        relation = relation_from_csv_file(path, primary_key=primary_keys.get(path.stem))
        relations[relation.name] = relation
    if not relations:
        raise SchemaError(f"no CSV files found in {directory}")
    schema = DatabaseSchema([r.schema for r in relations.values()], foreign_keys)
    return Database(schema, relations)
