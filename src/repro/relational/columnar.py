"""Columnar, late-materialized views of relations and joins.

The QFE inner loop evaluates every surviving candidate query on every freshly
generated modified database. All candidates share one foreign-key join, and
most of them share selection terms, so the natural execution shape is
column-major: build per-attribute value arrays once per database instance,
evaluate each *distinct* term once per column into a row-selection mask, and
combine the cached masks per candidate with bitwise AND/OR.

Masks are arbitrary-precision integers (bit ``i`` set ⇔ joined row ``i``
selected). Python's big-int bitwise operations run at C speed, which makes
combining masks for a candidate essentially free once its terms are cached;
only the final gather of selected rows is proportional to the result size
(late materialization).

:class:`ColumnarView` carries the term-level mask cache, keyed on
``Term.mask_key()`` — ``(attribute, op, normalized constant)`` — so the many
QBO-generated candidates that share terms evaluate each distinct term exactly
once per join. Views are built from an immutable snapshot of a relation: if
the underlying database copy is modified, the view must be invalidated and
rebuilt (see ``JoinedRelation.invalidate_columnar`` and
``JoinCache.invalidate``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.exceptions import EvaluationError
from repro.relational.predicates import Conjunct, DNFPredicate, Term, compile_term

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (join imports us lazily)
    from repro.relational.relation import Relation

__all__ = ["ColumnarView", "pack_bools", "mask_positions", "mask_count"]

#: Bits packed per inner chunk while building a mask; keeps every shift small
#: so packing a column of n values costs O(n) word operations, not O(n²/64).
_PACK_CHUNK = 256


def pack_bools(flags: Sequence[Any]) -> int:
    """Pack a sequence of truthy/falsy flags into an integer bitmask.

    Bit ``i`` of the result is set exactly when ``flags[i]`` is truthy.
    """
    mask = 0
    for start in range(0, len(flags), _PACK_CHUNK):
        chunk = 0
        for offset, flag in enumerate(flags[start : start + _PACK_CHUNK]):
            if flag:
                chunk |= 1 << offset
        if chunk:
            mask |= chunk << start
    return mask


def mask_positions(mask: int) -> list[int]:
    """Row positions of all set bits, ascending (O(row count) overall)."""
    if mask == 0:
        return []
    bits = bin(mask)  # '0b1...' — character at index i (i >= 2) is bit len-1-i
    highest = len(bits) - 1
    positions = [highest - i for i, ch in enumerate(bits) if ch == "1"]
    positions.reverse()
    return positions


def mask_count(mask: int) -> int:
    """Number of selected rows in a mask."""
    return mask.bit_count()


def _evaluate_guarded(test: Callable[[Any], bool], value: Any) -> tuple[bool, EvaluationError | None]:
    """Evaluate a compiled term on one value, capturing its evaluation error."""
    try:
        return test(value), None
    except EvaluationError as exc:
        return False, exc


class ColumnarView:
    """Column-major view of a relation plus the shared term-mask cache.

    The view snapshots the relation's tuples at construction time; it does not
    observe later modifications of the relation. Callers that mutate a
    database instance whose join/view is cached must invalidate first.

    Error semantics replicate the row-at-a-time interpreter's short-circuit
    behaviour exactly: a term that cannot be evaluated for some row (e.g. an
    incomparable value/constant pair, or a missing attribute) only raises if
    that row actually *reaches* the term — i.e. the row passed every earlier
    term of its conjunct and was not already satisfied by an earlier conjunct.
    Term entries therefore carry an error mask alongside the truth mask.
    """

    __slots__ = (
        "names",
        "row_count",
        "_index",
        "_columns",
        "_term_masks",
        "_term_tests",
        "_all_rows_mask",
    )

    def __init__(self, relation: "Relation") -> None:
        self.names: tuple[str, ...] = relation.schema.attribute_names
        self._index = {name: position for position, name in enumerate(self.names)}
        tuples = relation.tuples
        self.row_count = len(tuples)
        if tuples:
            self._columns: list[tuple[Any, ...]] = list(zip(*(t.values for t in tuples)))
        else:
            self._columns = [() for _ in self.names]
        self._term_masks: dict[tuple, tuple[int, int, EvaluationError | None]] = {}
        # Compiled value tests retained per cached key so `derive` can
        # re-evaluate a term at just the patched/appended positions.
        self._term_tests: dict[tuple, Any] = {}
        self._all_rows_mask = (1 << self.row_count) - 1

    # ------------------------------------------------------------------ columns
    def index_of(self, attribute: str) -> int:
        """Position of a qualified attribute (raises EvaluationError if absent)."""
        try:
            return self._index[attribute]
        except KeyError:
            raise EvaluationError(f"row has no attribute {attribute!r}") from None

    def has_attribute(self, attribute: str) -> bool:
        """Whether the view carries a column for *attribute*."""
        return attribute in self._index

    def column(self, attribute: str) -> tuple[Any, ...]:
        """All values of *attribute*, in row order."""
        return self._columns[self.index_of(attribute)]

    @property
    def all_rows_mask(self) -> int:
        """The mask selecting every row (the always-true predicate)."""
        return self._all_rows_mask

    @property
    def cached_term_count(self) -> int:
        """How many distinct term masks are currently cached (diagnostics)."""
        return len(self._term_masks)

    # -------------------------------------------------------------------- masks
    def _term_entry(self, term: Term) -> tuple[int, int, EvaluationError | None]:
        """``(truth mask, error mask, representative error)`` for one term.

        Bit ``i`` of the error mask is set when evaluating the term on row
        ``i`` raised; whether that raise surfaces depends on reachability,
        which the conjunct/predicate combinators decide.
        """
        try:
            key = term.mask_key()
            entry = self._term_masks.get(key)
        except TypeError:  # unhashable constant: evaluate without caching
            key = None
            entry = None
        if entry is None:
            entry = self._build_term_entry(term)
            if key is not None:
                self._term_masks[key] = entry
                self._term_tests[key] = compile_term(term)
        return entry

    def _build_term_entry(self, term: Term) -> tuple[int, int, EvaluationError | None]:
        if self.row_count == 0:
            # The interpreter never evaluates anything on an empty relation,
            # so even a missing attribute goes unnoticed there.
            return (0, 0, None)
        try:
            column = self._columns[self.index_of(term.attribute)]
        except EvaluationError as exc:
            return (0, self._all_rows_mask, exc)  # erroring on every row
        test = compile_term(term)
        try:
            return (pack_bools([test(value) for value in column]), 0, None)
        except EvaluationError:
            # Rare path: some rows are incomparable — record them per row.
            truth_flags: list[bool] = []
            error_flags: list[bool] = []
            first_error: EvaluationError | None = None
            for value in column:
                try:
                    truth_flags.append(test(value))
                    error_flags.append(False)
                except EvaluationError as exc:
                    truth_flags.append(False)
                    error_flags.append(True)
                    if first_error is None:
                        first_error = exc
            return (pack_bools(truth_flags), pack_bools(error_flags), first_error)

    def term_mask(self, term: Term) -> int:
        """The row-selection mask of one term evaluated standalone on all rows.

        Raises :class:`EvaluationError` if the term cannot be evaluated on
        *any* row — matching the interpreter applying the term to every row.
        """
        mask, error_mask, error = self._term_entry(term)
        if error_mask:
            raise error  # type: ignore[misc]  # error is set whenever error_mask is
        return mask

    def conjunct_mask(self, conjunct: Conjunct, pending: int | None = None) -> int:
        """AND of the conjunct's term masks (empty conjunct selects all rows).

        *pending* restricts evaluation to a subset of rows (used by
        :meth:`predicate_mask` for OR-level short-circuiting). A term's
        evaluation error surfaces only if an erroring row is still alive when
        the term is reached — exactly the interpreter's left-to-right,
        short-circuit semantics.
        """
        alive = self._all_rows_mask if pending is None else pending
        for term in conjunct.terms:
            mask, error_mask, error = self._term_entry(term)
            if error_mask & alive:
                raise error  # type: ignore[misc]
            alive &= mask
            if not alive:
                break
        return alive

    def predicate_mask(self, predicate: DNFPredicate) -> int:
        """OR of the conjunct masks (the always-true predicate selects all rows).

        Rows already satisfied by an earlier conjunct are excluded from later
        conjuncts' evaluation, mirroring ``any()``'s short-circuit in the
        interpreter (a later conjunct's error on such a row never surfaces).
        """
        if predicate.is_true:
            return self._all_rows_mask
        satisfied = 0
        remaining = self._all_rows_mask
        for conjunct in predicate.conjuncts:
            if not remaining:
                break
            satisfied |= self.conjunct_mask(conjunct, remaining)
            remaining = self._all_rows_mask & ~satisfied
        return satisfied

    def selected_positions(self, predicate: DNFPredicate) -> list[int]:
        """Row positions satisfying *predicate*, ascending."""
        mask = self.predicate_mask(predicate)
        if mask == self._all_rows_mask:
            return list(range(self.row_count))
        return mask_positions(mask)

    # ------------------------------------------------------------------- gather
    def gather(self, mask: int, positions: Sequence[int]) -> list[tuple[Any, ...]]:
        """Materialize the rows selected by *mask*, projected to *positions*."""
        columns = [self._columns[p] for p in positions]
        if mask == self._all_rows_mask:
            return list(zip(*columns)) if columns else [() for _ in range(self.row_count)]
        selected = mask_positions(mask)
        return [tuple(column[row] for column in columns) for row in selected]

    def clear_term_masks(self) -> None:
        """Drop the cached term masks (the columns themselves are immutable)."""
        self._term_masks.clear()
        self._term_tests.clear()

    # ------------------------------------------------------------------- derive
    def derive(
        self,
        patches: Mapping[int, Mapping[int, Any]],
        removed: Sequence[int],
        appended: Sequence[Sequence[Any]],
    ) -> "ColumnarView":
        """A copy-on-write view with cells patched, rows removed and rows added.

        *patches* maps base row positions to ``{column position: new value}``;
        *removed* lists base row positions to drop; *appended* holds full new
        value rows (in column order) placed after the surviving base rows —
        exactly the shape :meth:`JoinedRelation.apply_delta` produces.

        Columns untouched by any change are shared with the base view by
        reference, and so are their cached term-mask entries. Affected cached
        masks are *patched*, not recomputed: changed bits are re-evaluated at
        the affected positions only, removals compact the masks with O(|removed|)
        big-int shifts, and appended rows contribute freshly evaluated bits —
        O(|Δ|) term evaluations plus O(rows/64) word operations per mask,
        versus O(rows) Python-level evaluations for a cold rebuild. Error
        masks (and the short-circuit error semantics they encode) are
        maintained the same way.
        """
        removed_descending = sorted(removed, reverse=True)
        structural = bool(removed_descending or appended)
        survivor_count = self.row_count - len(removed_descending)
        new_row_count = survivor_count + len(appended)

        by_column: dict[int, list[tuple[int, Any]]] = {}
        for position, cells in patches.items():
            for column_position, value in cells.items():
                by_column.setdefault(column_position, []).append((position, value))

        view = ColumnarView.__new__(ColumnarView)
        view.names = self.names
        view._index = self._index
        view.row_count = new_row_count
        view._all_rows_mask = (1 << new_row_count) - 1

        columns: list[tuple[Any, ...]] = []
        for column_position, column in enumerate(self._columns):
            cell_patches = by_column.get(column_position)
            if not structural and not cell_patches:
                columns.append(column)  # shared with the base view
                continue
            values = list(column)
            if cell_patches:
                for position, value in cell_patches:
                    values[position] = value
            for position in removed_descending:
                del values[position]
            if appended:
                values.extend(row[column_position] for row in appended)
            columns.append(tuple(values))
        view._columns = columns

        view._term_masks = {}
        view._term_tests = {}
        for key, entry in self._term_masks.items():
            column_position = self._index.get(key[0])
            test = self._term_tests.get(key)
            if column_position is None or test is None:
                # Missing-attribute error entries (or untracked tests) are
                # rebuilt lazily against the derived view instead.
                continue
            cell_patches = by_column.get(column_position)
            if not structural and not cell_patches:
                view._term_masks[key] = entry
                view._term_tests[key] = test
                continue
            mask, error_mask, error = entry
            if cell_patches:
                for position, value in cell_patches:
                    bit = 1 << position
                    truth, raised = _evaluate_guarded(test, value)
                    mask = (mask | bit) if truth else (mask & ~bit)
                    if raised is not None:
                        error_mask |= bit
                        error = error or raised
                    else:
                        error_mask &= ~bit
            for position in removed_descending:
                low = (1 << position) - 1
                mask = (mask & low) | ((mask >> (position + 1)) << position)
                error_mask = (error_mask & low) | ((error_mask >> (position + 1)) << position)
            if appended:
                added_mask = 0
                added_errors = 0
                for offset, row in enumerate(appended):
                    truth, raised = _evaluate_guarded(test, row[column_position])
                    if truth:
                        added_mask |= 1 << offset
                    if raised is not None:
                        added_errors |= 1 << offset
                        error = error or raised
                mask |= added_mask << survivor_count
                error_mask |= added_errors << survivor_count
            if not error_mask:
                error = None
            view._term_masks[key] = (mask, error_mask, error)
            view._term_tests[key] = test
        return view

    # ----------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Picklable state: the immutable columns, without the mask caches.

        Compiled term tests are closures and cannot cross a process boundary,
        and a term-mask entry without its retained test would silently break
        :meth:`derive` (the entry would exist but could never be patched), so
        both caches are dropped together. A rehydrated view is a *cold* view
        over the same columns; its masks rebuild lazily — which is why the
        parallel round planner warms the base view once per worker before
        evaluating any delta-derived candidate against it.
        """
        return {
            "names": self.names,
            "row_count": self.row_count,
            "_index": self._index,
            "_columns": self._columns,
            "_all_rows_mask": self._all_rows_mask,
        }

    def __setstate__(self, state: dict) -> None:
        self.names = state["names"]
        self.row_count = state["row_count"]
        self._index = state["_index"]
        self._columns = state["_columns"]
        self._all_rows_mask = state["_all_rows_mask"]
        self._term_masks = {}
        self._term_tests = {}

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarView({len(self.names)} columns, {self.row_count} rows, "
            f"{len(self._term_masks)} cached masks)"
        )
