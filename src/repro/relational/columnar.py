"""Columnar, late-materialized views of relations and joins.

The QFE inner loop evaluates every surviving candidate query on every freshly
generated modified database. All candidates share one foreign-key join, and
most of them share selection terms, so the natural execution shape is
column-major: build per-attribute value arrays once per database instance,
evaluate each *distinct* term once per column into a row-selection mask, and
combine the cached masks per candidate with bitwise AND/OR.

Masks are arbitrary-precision integers (bit ``i`` set ⇔ joined row ``i``
selected). Python's big-int bitwise operations run at C speed, which makes
combining masks for a candidate essentially free once its terms are cached;
only the final gather of selected rows is proportional to the result size
(late materialization).

Storage layout
--------------

Columns are stored compactly when the declared attribute type allows it:

* :class:`IntColumn` — ``array('q')`` (int64) with an exact big-int *side
  table* for values outside the int64 range, so the 2^53±1 regime and true
  big ints keep Python-exact semantics;
* :class:`FloatColumn` — ``array('d')`` (float64, bit-exact for Python
  floats);
* :class:`StringColumn` — dictionary encoding: an ``array('i')`` of codes
  into a *sorted* tuple of distinct strings (code order == value order);
* :class:`BoolColumn` — a bit-packed big-int of truth bits.

Every typed column carries a sparse ``{position: boxed value}`` side table
holding NULLs and any value the buffer cannot represent; columns whose data
does not match the declared type fall back to the plain object-tuple layout.
On top of the buffers sit two lazily-built acceleration structures:

* a **sorted term index** (row positions sorted by buffer value), built on
  the first range/equality term against the column, turning selective mask
  construction into ``O(log n + k)`` bisects instead of a full scan;
* **zone maps** (min/max per fixed-width block of rows), used to skip or
  wholesale-fill blocks for ordering terms before the index exists.

:class:`ColumnarViewReference` retains the original object-tuple layout for
every column and is the differential oracle: typed views must produce
bit-identical masks, errors and gathers.

:class:`ColumnarView` carries the term-level mask cache, keyed on
``Term.mask_key()`` — ``(attribute, op, normalized constant)`` — so the many
QBO-generated candidates that share terms evaluate each distinct term exactly
once per join. Views are built from an immutable snapshot of a relation: if
the underlying database copy is modified, the view must be invalidated and
rebuilt (see ``JoinedRelation.invalidate_columnar`` and
``JoinCache.invalidate``).
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import EvaluationError
from repro.obs.registry import RegistryStats
from repro.relational.predicates import (
    ORDERING_OPS as _ORDERING_OPS,
    Conjunct,
    ComparisonOp,
    DNFPredicate,
    Term,
    compile_term,
)
from repro.relational.types import INT64_MAX, INT64_MIN, AttributeType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (join imports us lazily)
    from repro.relational.relation import Relation

__all__ = [
    "ColumnarView",
    "ColumnarViewReference",
    "TypedColumn",
    "IntColumn",
    "FloatColumn",
    "StringColumn",
    "BoolColumn",
    "build_typed_column",
    "export_typed_column",
    "typed_column_from_buffer",
    "object_column_bytes",
    "pack_bools",
    "pack_bools_reference",
    "mask_positions",
    "mask_from_positions",
    "mask_count",
    "COLUMNAR_STATS",
]

#: Bits packed per inner chunk by the reference packer; keeps every shift
#: small so packing a column of n values costs O(n) word operations.
_PACK_CHUNK = 256

#: Rows per zone-map block. A multiple of 8 so a full block always covers
#: whole bytes of the position bitmap.
_ZONE_BLOCK = 4096

#: A column with more than this fraction of unrepresentable/NULL values is
#: stored as a plain object tuple instead (the side table would dominate).
_SPECIAL_FALLBACK_DENOMINATOR = 4

#: ``mask_positions`` switches to the bit-stripping sparse path when the
#: population count is this many times smaller than the bit length.
_SPARSE_POSITIONS_FACTOR = 16

_MISSING = object()


class ColumnarStats(RegistryStats):
    """Process-wide counters for typed-column storage behaviour.

    Purely diagnostic: benchmarks and tests use these to pin that the
    acceleration structures (sorted term index, zone maps) actually engage.
    Registry-backed (``qfe_columnar_*``), so increments made inside pool
    workers are merged back to the driver after each round instead of being
    lost with the child process.
    """

    _PREFIX = "qfe_columnar"
    _FIELDS = (
        "typed_columns",
        "object_columns",
        "typed_term_masks",
        "fallback_term_scans",
        "index_builds",
        "index_probes",
        "zone_builds",
        "zone_block_fills",
        "zone_block_skips",
        "zone_boundary_rows",
        "buffer_exports",
        "buffer_imports",
    )
    _HELP = {
        "typed_columns": "Columns stored in typed compact form.",
        "object_columns": "Columns kept as plain object tuples.",
        "typed_term_masks": "Term masks answered from typed columns.",
        "fallback_term_scans": "Term masks computed by row scan fallback.",
        "index_builds": "Sorted term index builds.",
        "index_probes": "Sorted term index probes.",
        "zone_builds": "Zone map builds.",
        "zone_block_fills": "Zone blocks answered wholesale (all-match).",
        "zone_block_skips": "Zone blocks skipped wholesale (no-match).",
        "zone_boundary_rows": "Rows tested individually at zone boundaries.",
        "buffer_exports": "Typed columns exported as raw buffers (shm ship).",
        "buffer_imports": "Typed columns rebuilt from raw buffers (shm attach).",
    }


COLUMNAR_STATS = ColumnarStats()


def pack_bools(flags: Sequence[Any]) -> int:
    """Pack a sequence of truthy/falsy flags into an integer bitmask.

    Bit ``i`` of the result is set exactly when ``flags[i]`` is truthy.
    Packs through a little-endian byte buffer so the big-int is assembled in
    one C-level ``int.from_bytes`` instead of per-bit big-int shifts.
    """
    buffer = bytearray((len(flags) + 7) >> 3)
    for i, flag in enumerate(flags):
        if flag:
            buffer[i >> 3] |= 1 << (i & 7)
    return int.from_bytes(buffer, "little")


def pack_bools_reference(flags: Sequence[Any]) -> int:
    """The original chunked-shift packer, kept as the property-test oracle."""
    mask = 0
    for start in range(0, len(flags), _PACK_CHUNK):
        chunk = 0
        for offset, flag in enumerate(flags[start : start + _PACK_CHUNK]):
            if flag:
                chunk |= 1 << offset
        if chunk:
            mask |= chunk << start
    return mask


def mask_positions(mask: int) -> list[int]:
    """Row positions of all set bits, ascending.

    Dense masks scan the ``bin()`` string (O(row count)); sparse masks strip
    low set bits one at a time (``mask & -mask``), which costs
    O(popcount · words) and wins when very few bits are set.
    """
    if mask == 0:
        return []
    length = mask.bit_length()
    if mask.bit_count() * _SPARSE_POSITIONS_FACTOR <= length:
        positions = []
        while mask:
            low = mask & -mask
            positions.append(low.bit_length() - 1)
            mask ^= low
        return positions
    bits = bin(mask)  # '0b1...' — character at index i (i >= 2) is bit len-1-i
    highest = len(bits) - 1
    positions = [highest - i for i, ch in enumerate(bits) if ch == "1"]
    positions.reverse()
    return positions


def mask_from_positions(positions: Iterable[int], row_count: int | None = None) -> int:
    """Bitmask with exactly the given row positions set.

    The inverse of :func:`mask_positions`; assembles through a byte buffer so
    cost is O(row_count / 8 + len(positions)) regardless of bit spread.
    """
    if row_count is None:
        positions = positions if isinstance(positions, (list, tuple)) else list(positions)
        if not positions:
            return 0
        row_count = max(positions) + 1
    buffer = bytearray((row_count + 7) >> 3)
    for position in positions:
        buffer[position >> 3] |= 1 << (position & 7)
    return int.from_bytes(buffer, "little")


def mask_count(mask: int) -> int:
    """Number of selected rows in a mask."""
    return mask.bit_count()


def _evaluate_guarded(test: Callable[[Any], bool], value: Any) -> tuple[bool, EvaluationError | None]:
    """Evaluate a compiled term on one value, capturing its evaluation error."""
    try:
        return test(value), None
    except EvaluationError as exc:
        return False, exc


def _positions_mask(order: Sequence[int], lo: int, hi: int, byte_count: int) -> int:
    """Mask of the row positions in ``order[lo:hi]`` (a sorted-index slice)."""
    if lo >= hi:
        return 0
    buffer = bytearray(byte_count)
    for idx in range(lo, hi):
        position = order[idx]
        buffer[position >> 3] |= 1 << (position & 7)
    return int.from_bytes(buffer, "little")


def _set_range_bits(buffer: bytearray, start: int, stop: int) -> None:
    """Set bits [start, stop) of a little-endian bitmap; start is byte-aligned."""
    first_byte = start >> 3
    last_full = stop >> 3
    if last_full > first_byte:
        buffer[first_byte:last_full] = b"\xff" * (last_full - first_byte)
    for i in range(last_full << 3, stop):
        buffer[i >> 3] |= 1 << (i & 7)


def object_column_bytes(column: Sequence[Any]) -> int:
    """Approximate heap bytes of an object-tuple column (pointers + boxes).

    Boxes are deduplicated by identity within the column, so interned values
    (small ints, singletons) are charged once — the comparison against typed
    storage stays honest.
    """
    total = sys.getsizeof(tuple(column)) if not isinstance(column, tuple) else sys.getsizeof(column)
    seen: set[int] = set()
    for value in column:
        marker = id(value)
        if marker not in seen:
            seen.add(marker)
            total += sys.getsizeof(value)
    return total


# --------------------------------------------------------------------------- typed columns
class TypedColumn:
    """Compact column: a typed buffer plus a sparse boxed side table.

    ``_special`` maps row positions to the exact boxed value whenever the
    buffer cannot represent it — SQL NULLs, ints beyond int64, strings absent
    from the dictionary after a derive, or stray values of unexpected type.
    Buffer cells at those positions hold a sentinel and are never trusted.

    Subclasses provide the buffer representation plus ``_buffer_term_masks``,
    the fast path producing ``(truth mask, error mask)`` over buffer rows for
    one term; :meth:`term_entry` folds the side table back in. A ``None``
    return means "unsupported term/constant shape" and the view falls back to
    the generic boxed scan — semantics never depend on the fast path.
    """

    __slots__ = ("_length", "_special", "_special_mask", "_order", "_sorted_values", "_zones")

    kind = "typed"

    def __init__(self) -> None:  # pragma: no cover - subclasses use _make
        raise TypeError("TypedColumn subclasses are constructed via build_typed_column")

    # ------------------------------------------------------------- basic access
    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Any]:
        return iter(self.boxed())

    def __getitem__(self, position: int) -> Any:
        length = self._length
        if position < 0:
            position += length
        if not 0 <= position < length:
            raise IndexError("column position out of range")
        value = self._special.get(position, _MISSING)
        if value is not _MISSING:
            return value
        return self._buffer_get(position)

    def boxed(self) -> list[Any]:
        """All values as a plain boxed list, in row order (uncached)."""
        values = self._boxed_buffer()
        for position, value in self._special.items():
            values[position] = value
        return values

    @property
    def special_count(self) -> int:
        """How many positions live in the boxed side table (NULLs included)."""
        return len(self._special)

    @property
    def special_mask(self) -> int:
        """Mask of side-table positions (lazy)."""
        mask = self._special_mask
        if mask is None:
            mask = mask_from_positions(self._special.keys(), self._length)
            self._special_mask = mask
        return mask

    def _buffer_mask(self) -> int:
        """Mask of rows represented in the buffer (everything but specials)."""
        return ((1 << self._length) - 1) & ~self.special_mask

    # ------------------------------------------------------------- term masking
    def term_entry(
        self, term: Term, test: Callable[[Any], bool]
    ) -> tuple[int, int, EvaluationError | None] | None:
        """``(truth mask, error mask, representative error)`` for one term.

        Returns ``None`` when the term's shape is outside the fast paths; the
        caller then falls back to the generic boxed scan.
        """
        buffer_masks = self._buffer_term_masks(term, test)
        if buffer_masks is None:
            return None
        mask, error_mask = buffer_masks
        if self._special:
            for position, value in self._special.items():
                truth, raised = _evaluate_guarded(test, value)
                if truth:
                    mask |= 1 << position
                if raised is not None:
                    error_mask |= 1 << position
        first_error: EvaluationError | None = None
        if error_mask:
            # The representative error must be the error of the *first*
            # erroring row in row order, with the interpreter's exact message:
            # re-evaluate that one row.
            position = (error_mask & -error_mask).bit_length() - 1
            try:
                test(self[position])
            except EvaluationError as exc:
                first_error = exc
            if first_error is None:  # pragma: no cover - defensive consistency check
                return None
        return (mask, error_mask, first_error)

    def _buffer_term_masks(
        self, term: Term, test: Callable[[Any], bool]
    ) -> tuple[int, int] | None:
        raise NotImplementedError

    # ----------------------------------------------------------- sorted index
    def _order_data(self) -> "array[Any]":
        raise NotImplementedError

    def _ensure_order(self) -> tuple["array[int]", "array[Any]"]:
        """Build (lazily) row positions sorted by buffer value, plus the values."""
        order = self._order
        if order is None:
            data = self._order_data()
            special = self._special
            if special:
                positions = [i for i in range(self._length) if i not in special]
            else:
                positions = list(range(self._length))
            positions.sort(key=data.__getitem__)
            order = array("l", positions)
            self._order = order
            self._sorted_values = array(data.typecode, map(data.__getitem__, positions))
            COLUMNAR_STATS.index_builds += 1
        return order, self._sorted_values

    def _index_range_mask(self, lo: int, hi: int) -> int:
        """Mask of the sorted-index slice [lo, hi), complementing when large."""
        order, values = self._ensure_order()
        COLUMNAR_STATS.index_probes += 1
        total = len(order)
        byte_count = (self._length + 7) >> 3
        k = hi - lo
        if k <= 0:
            return 0
        if 2 * k <= total:
            return _positions_mask(order, lo, hi, byte_count)
        outside = _positions_mask(order, 0, lo, byte_count) | _positions_mask(
            order, hi, total, byte_count
        )
        return self._buffer_mask() & ~outside

    # -------------------------------------------------------------------- derive
    def derive(
        self,
        cell_patches: Sequence[tuple[int, Any]],
        removed_descending: Sequence[int],
        appended_values: Sequence[Any],
    ) -> "TypedColumn":
        """Copy-on-write: patch cells, drop rows, append rows.

        The buffer is copied (a C-level memcpy); the side table is rebuilt in
        O(|side table| + |Δ|). Acceleration structures start cold on the
        derived column and rebuild lazily.
        """
        data = self._copy_data()
        special = dict(self._special)
        for position, value in cell_patches:
            if self._store(data, position, value):
                special.pop(position, None)
            else:
                special[position] = value
        if removed_descending:
            for position in removed_descending:
                del data[position]
            if special:
                removed_ascending = removed_descending[::-1]
                removed_set = set(removed_ascending)
                remapped: dict[int, Any] = {}
                for position, value in special.items():
                    if position in removed_set:
                        continue
                    remapped[position - bisect_right(removed_ascending, position)] = value
                special = remapped
        for value in appended_values:
            position = len(data)
            if not self._store_append(data, value):
                data.append(self._sentinel())
                special[position] = value
        return self._with(data, special)

    # ------------------------------------------------------------------- memory
    def memory_bytes(self) -> int:
        """Approximate heap bytes: buffer + side table + lazy structures."""
        total = self._payload_bytes()
        special = self._special
        if special:
            total += sys.getsizeof(special)
            for value in special.values():
                total += sys.getsizeof(value)
        if self._order is not None:
            total += sys.getsizeof(self._order) + sys.getsizeof(self._sorted_values)
        if self._zones is not None:
            total += sys.getsizeof(self._zones) + 96 * len(self._zones)
        return total

    # subclass hooks -----------------------------------------------------------
    def _buffer_get(self, position: int) -> Any:
        raise NotImplementedError

    def _boxed_buffer(self) -> list[Any]:
        raise NotImplementedError

    def _copy_data(self) -> Any:
        raise NotImplementedError

    def _store(self, data: Any, position: int, value: Any) -> bool:
        raise NotImplementedError

    def _store_append(self, data: Any, value: Any) -> bool:
        raise NotImplementedError

    def _sentinel(self) -> Any:
        raise NotImplementedError

    def _with(self, data: Any, special: dict[int, Any]) -> "TypedColumn":
        raise NotImplementedError

    def _payload_bytes(self) -> int:
        raise NotImplementedError

    def export_buffer(self) -> tuple[dict[str, Any], bytes]:
        """Split the column into a small picklable descriptor + one raw buffer.

        The descriptor carries the layout tag, the boxed side table, and any
        non-buffer payload (the string dictionary); the second element is the
        raw buffer bytes, suitable for writing straight into a shared-memory
        block. :func:`typed_column_from_buffer` is the inverse; lazy
        acceleration structures (index/zones) are never exported and rebuild
        on demand, mirroring pickling.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self._length} rows, {len(self._special)} special)"


def _init_lazy(column: TypedColumn) -> None:
    column._special_mask = None
    column._order = None
    column._sorted_values = None
    column._zones = None


class _NumericColumn(TypedColumn):
    """Shared machinery for int64/float64 buffers: bisect + zone-map masking."""

    __slots__ = ("_data",)

    typecode = ""

    @classmethod
    def _make(cls, data: "array[Any]", special: dict[int, Any]) -> "_NumericColumn":
        column = object.__new__(cls)
        column._data = data
        column._special = special
        column._length = len(data)
        _init_lazy(column)
        return column

    # basic access
    def _buffer_get(self, position: int) -> Any:
        return self._data[position]

    def _boxed_buffer(self) -> list[Any]:
        return self._data.tolist()

    def _order_data(self) -> "array[Any]":
        return self._data

    # derive hooks
    def _copy_data(self) -> "array[Any]":
        return array(self.typecode, self._data)

    def _sentinel(self) -> Any:
        return 0 if self.typecode == "q" else 0.0

    def _with(self, data: "array[Any]", special: dict[int, Any]) -> "_NumericColumn":
        return type(self)._make(data, special)

    def _payload_bytes(self) -> int:
        return sys.getsizeof(self._data)

    # zone maps
    def _ensure_zones(self) -> list[tuple[Any, Any]]:
        """Per-block (min, max) over raw buffer values, sentinels included.

        Sentinels at side-table positions only widen a block's range — the
        classification below asserts facts about buffer cells, and side-table
        bits are masked off afterwards, so the conservative widening is safe.
        """
        zones = self._zones
        if zones is None:
            data = self._data
            zones = []
            for start in range(0, self._length, _ZONE_BLOCK):
                block = data[start : start + _ZONE_BLOCK]
                zones.append((min(block), max(block)))
            self._zones = zones
            COLUMNAR_STATS.zone_builds += 1
        return zones

    # term masking
    def _buffer_term_masks(
        self, term: Term, test: Callable[[Any], bool]
    ) -> tuple[int, int] | None:
        op = term.op
        constant = term.constant
        if op is ComparisonOp.EQ or op is ComparisonOp.NE:
            eq = self._equality_mask(constant)
            if eq is None:
                return None
            if op is ComparisonOp.EQ:
                return (eq, 0)
            return (self._buffer_mask() & ~eq, 0)
        if op is ComparisonOp.IN or op is ComparisonOp.NOT_IN:
            if not isinstance(constant, tuple):
                return None
            union = 0
            for item in constant:
                eq = self._equality_mask(item)
                if eq is None:
                    return None
                union |= eq
            if op is ComparisonOp.IN:
                return (union, 0)
            return (self._buffer_mask() & ~union, 0)
        if op in _ORDERING_OPS:
            return self._ordering_masks(op, constant)
        return None  # pragma: no cover - exhaustive over ComparisonOp

    def _equality_mask(self, constant: Any) -> int | None:
        """Mask of buffer rows whose value ``== constant`` (exact), else None."""
        if constant is None or isinstance(constant, str):
            return 0  # a numeric buffer value never equals these
        if isinstance(constant, float):
            if constant != constant:  # NaN equals nothing
                return 0
        elif not isinstance(constant, int):  # bool is int; big ints are exact
            return None
        if self._order is None and self._zones is not None:
            # Cheap reject off the already-built zone maps before paying for
            # the sorted index.
            low = min(mn for mn, _ in self._zones)
            high = max(mx for _, mx in self._zones)
            if constant < low or constant > high:
                COLUMNAR_STATS.zone_block_skips += len(self._zones)
                return 0
        _, values = self._ensure_order()
        lo = bisect_left(values, constant)
        hi = bisect_right(values, constant, lo)
        return self._index_range_mask(lo, hi)

    def _ordering_masks(self, op: ComparisonOp, constant: Any) -> tuple[int, int] | None:
        if isinstance(constant, float):
            if constant != constant:  # NaN: every comparison is False, no error
                return (0, 0)
        elif isinstance(constant, int):
            pass  # bool included; comparisons are exact
        elif constant is None or isinstance(
            constant, (str, bytes, tuple, list, dict, set, frozenset)
        ):
            return (0, self._buffer_mask())  # every buffer comparison raises
        else:
            return None
        if self._order is not None:
            return (self._ordering_mask_via_index(op, constant), 0)
        # Zone-map path: classify whole blocks, scan only boundary blocks.
        zones = self._ensure_zones()
        length = self._length
        full_in: list[tuple[int, int]] = []
        boundary: list[tuple[int, int]] = []
        skipped = 0
        boundary_rows = 0
        for block_index, (low, high) in enumerate(zones):
            start = block_index * _ZONE_BLOCK
            stop = min(start + _ZONE_BLOCK, length)
            if op is ComparisonOp.LT:
                all_in, all_out = high < constant, low >= constant
            elif op is ComparisonOp.LE:
                all_in, all_out = high <= constant, low > constant
            elif op is ComparisonOp.GT:
                all_in, all_out = low > constant, high <= constant
            else:  # GE
                all_in, all_out = low >= constant, high < constant
            if all_in:
                full_in.append((start, stop))
            elif all_out:
                skipped += 1
            else:
                boundary.append((start, stop))
                boundary_rows += stop - start
        if boundary_rows > length // 4:
            # Mostly-boundary (unclustered) data: the sorted index amortizes
            # far better than repeated boundary scans.
            self._ensure_order()
            return (self._ordering_mask_via_index(op, constant), 0)
        COLUMNAR_STATS.zone_block_fills += len(full_in)
        COLUMNAR_STATS.zone_block_skips += skipped
        COLUMNAR_STATS.zone_boundary_rows += boundary_rows
        buffer = bytearray((length + 7) >> 3)
        for start, stop in full_in:
            _set_range_bits(buffer, start, stop)
        data = self._data
        if op is ComparisonOp.LT:
            for start, stop in boundary:
                for i in range(start, stop):
                    if data[i] < constant:
                        buffer[i >> 3] |= 1 << (i & 7)
        elif op is ComparisonOp.LE:
            for start, stop in boundary:
                for i in range(start, stop):
                    if data[i] <= constant:
                        buffer[i >> 3] |= 1 << (i & 7)
        elif op is ComparisonOp.GT:
            for start, stop in boundary:
                for i in range(start, stop):
                    if data[i] > constant:
                        buffer[i >> 3] |= 1 << (i & 7)
        else:  # GE
            for start, stop in boundary:
                for i in range(start, stop):
                    if data[i] >= constant:
                        buffer[i >> 3] |= 1 << (i & 7)
        return (int.from_bytes(buffer, "little") & self._buffer_mask(), 0)

    def _ordering_mask_via_index(self, op: ComparisonOp, constant: Any) -> int:
        _, values = self._ensure_order()
        total = len(values)
        if op is ComparisonOp.LT:
            lo, hi = 0, bisect_left(values, constant)
        elif op is ComparisonOp.LE:
            lo, hi = 0, bisect_right(values, constant)
        elif op is ComparisonOp.GT:
            lo, hi = bisect_right(values, constant), total
        else:  # GE
            lo, hi = bisect_left(values, constant), total
        return self._index_range_mask(lo, hi)

    # pickling
    def __getstate__(self) -> tuple:
        return (self._data, self._special)

    def __setstate__(self, state: tuple) -> None:
        self._data, self._special = state
        self._length = len(self._data)
        _init_lazy(self)

    # buffer export
    _BUFFER_LAYOUT = ""

    def export_buffer(self) -> tuple[dict[str, Any], bytes]:
        meta = {
            "layout": self._BUFFER_LAYOUT,
            "typecode": self._data.typecode,
            "special": dict(self._special),
        }
        return meta, self._data.tobytes()


class IntColumn(_NumericColumn):
    """Integer buffer, bit-width-reduced to the narrowest ``array`` typecode
    (``b``/``h``/``i``/``q``) that holds the column's value range at build
    time; ints a narrow buffer (or int64 itself) cannot hold live exact in
    the boxed side table."""

    __slots__ = ()
    typecode = "q"
    _BUFFER_LAYOUT = "int"

    @property
    def kind(self) -> str:  # type: ignore[override]
        return f"int{8 * self._data.itemsize}"

    def _store(self, data: "array[int]", position: int, value: Any) -> bool:
        if type(value) is int:
            try:
                data[position] = value
                return True
            except OverflowError:
                return False  # outside this buffer's width — keep it boxed
        return False

    def _store_append(self, data: "array[int]", value: Any) -> bool:
        if type(value) is int:
            try:
                data.append(value)
                return True
            except OverflowError:
                return False
        return False

    def _copy_data(self) -> "array[int]":
        return array(self._data.typecode, self._data)

    def _sentinel(self) -> int:
        return 0


class FloatColumn(_NumericColumn):
    """float64 buffer (bit-exact for Python floats); NaN is kept boxed."""

    __slots__ = ()
    typecode = "d"
    kind = "float64"
    _BUFFER_LAYOUT = "float"

    def _store(self, data: "array[float]", position: int, value: Any) -> bool:
        if type(value) is float and value == value:
            data[position] = value
            return True
        return False

    def _store_append(self, data: "array[float]", value: Any) -> bool:
        if type(value) is float and value == value:
            data.append(value)
            return True
        return False


class StringColumn(TypedColumn):
    """Dictionary-encoded strings: codes into a sorted distinct-value tuple.

    The dictionary is sorted, so code order equals lexicographic value order
    and ordering terms reduce to a code threshold found by bisecting the
    dictionary itself. Strings introduced later (derive patches/appends) that
    are absent from the dictionary go to the boxed side table — the
    dictionary is immutable and shared across derived columns.
    """

    __slots__ = ("_codes", "_dictionary", "_code_of")

    kind = "dict-string"

    @classmethod
    def _make(
        cls,
        codes: "array[int]",
        dictionary: tuple[str, ...],
        code_of: dict[str, int],
        special: dict[int, Any],
    ) -> "StringColumn":
        column = object.__new__(cls)
        column._codes = codes
        column._dictionary = dictionary
        column._code_of = code_of
        column._special = special
        column._length = len(codes)
        _init_lazy(column)
        return column

    @property
    def dictionary(self) -> tuple[str, ...]:
        return self._dictionary

    # basic access
    def _buffer_get(self, position: int) -> str:
        return self._dictionary[self._codes[position]]

    def _boxed_buffer(self) -> list[Any]:
        return list(map(self._dictionary.__getitem__, self._codes))

    def _order_data(self) -> "array[int]":
        return self._codes

    # derive hooks
    def _copy_data(self) -> "array[int]":
        return array(self._codes.typecode, self._codes)

    def _store(self, data: "array[int]", position: int, value: Any) -> bool:
        if type(value) is str:
            code = self._code_of.get(value)
            if code is not None:
                data[position] = code
                return True
        return False

    def _store_append(self, data: "array[int]", value: Any) -> bool:
        if type(value) is str:
            code = self._code_of.get(value)
            if code is not None:
                data.append(code)
                return True
        return False

    def _sentinel(self) -> int:
        return 0

    def _with(self, data: "array[int]", special: dict[int, Any]) -> "StringColumn":
        return StringColumn._make(data, self._dictionary, self._code_of, special)

    def _payload_bytes(self) -> int:
        total = sys.getsizeof(self._codes) + sys.getsizeof(self._dictionary)
        for value in self._dictionary:
            total += sys.getsizeof(value)
        total += sys.getsizeof(self._code_of)
        return total

    # term masking
    def _buffer_term_masks(
        self, term: Term, test: Callable[[Any], bool]
    ) -> tuple[int, int] | None:
        op = term.op
        constant = term.constant
        if op is ComparisonOp.EQ or op is ComparisonOp.NE:
            eq = self._equality_mask(constant)
            if eq is None:
                return None
            if op is ComparisonOp.EQ:
                return (eq, 0)
            return (self._buffer_mask() & ~eq, 0)
        if op is ComparisonOp.IN or op is ComparisonOp.NOT_IN:
            if not isinstance(constant, tuple):
                return None
            union = 0
            for item in constant:
                eq = self._equality_mask(item)
                if eq is None:
                    return None
                union |= eq
            if op is ComparisonOp.IN:
                return (union, 0)
            return (self._buffer_mask() & ~union, 0)
        if op in _ORDERING_OPS:
            return self._ordering_masks(op, constant)
        return None  # pragma: no cover - exhaustive over ComparisonOp

    def _equality_mask(self, constant: Any) -> int | None:
        if type(constant) is str:
            code = self._code_of.get(constant)
            if code is None:
                return 0
            _, codes = self._ensure_order()
            lo = bisect_left(codes, code)
            hi = bisect_right(codes, code, lo)
            return self._index_range_mask(lo, hi)
        if constant is None or isinstance(constant, (int, float, bytes, tuple, frozenset)):
            return 0  # a str never equals these
        return None

    def _ordering_masks(self, op: ComparisonOp, constant: Any) -> tuple[int, int] | None:
        if type(constant) is str:
            # Sorted dictionary: values < constant are exactly the codes below
            # the insertion point.
            lower = bisect_left(self._dictionary, constant)
            upper = bisect_right(self._dictionary, constant, lower)
            _, codes = self._ensure_order()
            total = len(codes)
            if op is ComparisonOp.LT:
                lo, hi = 0, bisect_left(codes, lower)
            elif op is ComparisonOp.LE:
                lo, hi = 0, bisect_left(codes, upper)
            elif op is ComparisonOp.GT:
                lo, hi = bisect_left(codes, upper), total
            else:  # GE
                lo, hi = bisect_left(codes, lower), total
            return (self._index_range_mask(lo, hi), 0)
        if constant is None or isinstance(
            constant, (int, float, bytes, tuple, list, dict, set, frozenset)
        ):
            return (0, self._buffer_mask())  # str vs non-str ordering raises
        return None

    # pickling
    def __getstate__(self) -> tuple:
        return (self._codes, self._dictionary, self._special)

    def __setstate__(self, state: tuple) -> None:
        self._codes, self._dictionary, self._special = state
        self._code_of = {value: code for code, value in enumerate(self._dictionary)}
        self._length = len(self._codes)
        _init_lazy(self)

    # buffer export (the dictionary rides in the descriptor: it is shared,
    # immutable, and usually tiny next to the code buffer)
    def export_buffer(self) -> tuple[dict[str, Any], bytes]:
        meta = {
            "layout": "string",
            "typecode": self._codes.typecode,
            "dictionary": self._dictionary,
            "special": dict(self._special),
        }
        return meta, self._codes.tobytes()


class BoolColumn(TypedColumn):
    """Bit-packed booleans: one big-int of truth bits plus the side table.

    Terms broadcast: the compiled test is evaluated once on ``False`` and
    once on ``True`` and the results are fanned out over the value bitmap —
    every op and constant shape is covered, including erroring comparisons.
    """

    __slots__ = ("_ones",)

    kind = "bitmap-bool"

    @classmethod
    def _make(cls, ones: int, length: int, special: dict[int, Any]) -> "BoolColumn":
        column = object.__new__(cls)
        column._ones = ones
        column._length = length
        column._special = special
        _init_lazy(column)
        return column

    @property
    def truth_mask(self) -> int:
        """Bitmask of buffer positions holding ``True`` (side table excluded)."""
        return self._ones

    # basic access
    def _buffer_get(self, position: int) -> bool:
        return bool((self._ones >> position) & 1)

    def _boxed_buffer(self) -> list[Any]:
        values = [False] * self._length
        for position in mask_positions(self._ones):
            values[position] = True
        return values

    # term masking
    def _buffer_term_masks(
        self, term: Term, test: Callable[[Any], bool]
    ) -> tuple[int, int] | None:
        buffer_mask = self._buffer_mask()
        ones = self._ones & buffer_mask
        zeros = buffer_mask & ~ones
        mask = 0
        error_mask = 0
        truth, raised = _evaluate_guarded(test, True)
        if truth:
            mask |= ones
        if raised is not None:
            error_mask |= ones
        truth, raised = _evaluate_guarded(test, False)
        if truth:
            mask |= zeros
        if raised is not None:
            error_mask |= zeros
        return (mask, error_mask)

    # derive (mask arithmetic instead of array surgery)
    def derive(
        self,
        cell_patches: Sequence[tuple[int, Any]],
        removed_descending: Sequence[int],
        appended_values: Sequence[Any],
    ) -> "BoolColumn":
        ones = self._ones
        special = dict(self._special)
        for position, value in cell_patches:
            bit = 1 << position
            if value is True:
                ones |= bit
                special.pop(position, None)
            elif value is False:
                ones &= ~bit
                special.pop(position, None)
            else:
                ones &= ~bit
                special[position] = value
        length = self._length
        if removed_descending:
            for position in removed_descending:
                low = (1 << position) - 1
                ones = (ones & low) | ((ones >> (position + 1)) << position)
            length -= len(removed_descending)
            if special:
                removed_ascending = removed_descending[::-1]
                removed_set = set(removed_ascending)
                remapped: dict[int, Any] = {}
                for position, value in special.items():
                    if position in removed_set:
                        continue
                    remapped[position - bisect_right(removed_ascending, position)] = value
                special = remapped
        for value in appended_values:
            if value is True:
                ones |= 1 << length
            elif value is not False:
                special[length] = value
            length += 1
        return BoolColumn._make(ones, length, special)

    def _payload_bytes(self) -> int:
        return sys.getsizeof(self._ones)

    # pickling
    def __getstate__(self) -> tuple:
        return (self._ones, self._length, self._special)

    def __setstate__(self, state: tuple) -> None:
        self._ones, self._length, self._special = state
        _init_lazy(self)

    # buffer export
    def export_buffer(self) -> tuple[dict[str, Any], bytes]:
        meta = {"layout": "bool", "length": self._length, "special": dict(self._special)}
        return meta, self._ones.to_bytes((self._length + 7) // 8 or 1, "little")


def _int_typecode(minimum: int, maximum: int) -> str:
    """Narrowest signed ``array`` typecode covering [minimum, maximum]."""
    if -128 <= minimum and maximum <= 127:
        return "b"
    if -32768 <= minimum and maximum <= 32767:
        return "h"
    if -2147483648 <= minimum and maximum <= 2147483647:
        return "i"
    return "q"


def build_typed_column(attribute_type: AttributeType, values: Sequence[Any]) -> TypedColumn | None:
    """Build the compact column for *values*, or ``None`` to keep object tuples.

    The builder is defensive: values are classified one by one against the
    declared type (``extend_raw``/``adopt_tuples`` bypass coercion, so stray
    types are possible) and anything unrepresentable goes to the boxed side
    table. When the side table would exceed a quarter of the rows the column
    is not worth encoding and ``None`` is returned.
    """
    count = len(values)
    if count == 0:
        return None
    special: dict[int, Any] = {}
    if attribute_type is AttributeType.INTEGER:
        minimum = maximum = 0
        for position, value in enumerate(values):
            if type(value) is int and INT64_MIN <= value <= INT64_MAX:
                if value < minimum:
                    minimum = value
                elif value > maximum:
                    maximum = value
            else:
                special[position] = value
        if len(special) * _SPECIAL_FALLBACK_DENOMINATOR > count:
            return None
        typecode = _int_typecode(minimum, maximum)
        data = array(typecode, bytes(array(typecode).itemsize * count))
        for position, value in enumerate(values):
            if position not in special:
                data[position] = value
        return IntColumn._make(data, special)
    if attribute_type is AttributeType.FLOAT:
        data = array("d", bytes(8 * count))
        for position, value in enumerate(values):
            if type(value) is float and value == value:
                data[position] = value
            else:
                special[position] = value
        if len(special) * _SPECIAL_FALLBACK_DENOMINATOR > count:
            return None
        return FloatColumn._make(data, special)
    if attribute_type is AttributeType.STRING:
        distinct: set[str] = set()
        for position, value in enumerate(values):
            if type(value) is str:
                distinct.add(value)
            else:
                special[position] = value
        if len(special) * _SPECIAL_FALLBACK_DENOMINATOR > count:
            return None
        dictionary = tuple(sorted(distinct))
        code_of = {value: code for code, value in enumerate(dictionary)}
        typecode = _int_typecode(0, max(len(dictionary) - 1, 0))
        codes = array(typecode, bytes(array(typecode).itemsize * count))
        lookup = code_of.get
        for position, value in enumerate(values):
            if position not in special:
                codes[position] = lookup(value)  # type: ignore[arg-type]
        return StringColumn._make(codes, dictionary, code_of, special)
    if attribute_type is AttributeType.BOOLEAN:
        ones = 0
        for position, value in enumerate(values):
            if value is True:
                ones |= 1 << position
            elif value is not False:
                special[position] = value
        if len(special) * _SPECIAL_FALLBACK_DENOMINATOR > count:
            return None
        return BoolColumn._make(ones, count, special)
    return None  # pragma: no cover - exhaustive over AttributeType


def export_typed_column(column: TypedColumn) -> tuple[dict[str, Any], bytes]:
    """Descriptor + raw buffer for *column* (see :meth:`TypedColumn.export_buffer`)."""
    COLUMNAR_STATS.buffer_exports += 1
    return column.export_buffer()


def typed_column_from_buffer(
    meta: Mapping[str, Any], buffer: "bytes | bytearray | memoryview"
) -> TypedColumn:
    """Rebuild a typed column from an exported descriptor + raw buffer.

    The inverse of :func:`export_typed_column`. *buffer* may be any
    bytes-like object — in particular a ``memoryview`` over a
    ``multiprocessing.shared_memory`` block, so attaching a shipped column is
    a single C-level ``frombytes`` copy with no pickle machinery involved.
    Acceleration structures start cold, exactly as after unpickling.
    """
    COLUMNAR_STATS.buffer_imports += 1
    layout = meta["layout"]
    special = dict(meta["special"])
    if layout in ("int", "float"):
        data: "array[Any]" = array(meta["typecode"])
        data.frombytes(buffer)
        cls = IntColumn if layout == "int" else FloatColumn
        return cls._make(data, special)
    if layout == "string":
        codes: "array[int]" = array(meta["typecode"])
        codes.frombytes(buffer)
        dictionary = tuple(meta["dictionary"])
        code_of = {value: code for code, value in enumerate(dictionary)}
        return StringColumn._make(codes, dictionary, code_of, special)
    if layout == "bool":
        return BoolColumn._make(int.from_bytes(buffer, "little"), meta["length"], special)
    raise ValueError(f"unknown typed-column layout: {layout!r}")


class ColumnarView:
    """Column-major view of a relation plus the shared term-mask cache.

    The view snapshots the relation's tuples at construction time; it does not
    observe later modifications of the relation. Callers that mutate a
    database instance whose join/view is cached must invalidate first.

    Error semantics replicate the row-at-a-time interpreter's short-circuit
    behaviour exactly: a term that cannot be evaluated for some row (e.g. an
    incomparable value/constant pair, or a missing attribute) only raises if
    that row actually *reaches* the term — i.e. the row passed every earlier
    term of its conjunct and was not already satisfied by an earlier conjunct.
    Term entries therefore carry an error mask alongside the truth mask.

    Columns are stored compactly (see the module docstring) when the declared
    attribute type allows; :class:`ColumnarViewReference` keeps every column
    as a plain object tuple and serves as the differential oracle.
    """

    __slots__ = (
        "names",
        "row_count",
        "_index",
        "_columns",
        "_term_masks",
        "_term_tests",
        "_all_rows_mask",
    )

    #: Subclasses flip this to keep the plain object-tuple layout.
    _TYPED = True

    def __init__(self, relation: "Relation") -> None:
        self.names: tuple[str, ...] = relation.schema.attribute_names
        self._index = {name: position for position, name in enumerate(self.names)}
        tuples = relation.tuples
        self.row_count = len(tuples)
        if tuples:
            raw_columns: list[Any] = list(zip(*(t.values for t in tuples)))
        else:
            raw_columns = [() for _ in self.names]
        if self._TYPED and tuples:
            columns: list[Any] = []
            for attribute, values in zip(relation.schema.attributes, raw_columns):
                typed = build_typed_column(attribute.type, values)
                if typed is None:
                    COLUMNAR_STATS.object_columns += 1
                    columns.append(values)
                else:
                    COLUMNAR_STATS.typed_columns += 1
                    columns.append(typed)
            self._columns = columns
        else:
            self._columns = raw_columns
        self._term_masks: dict[tuple, tuple[int, int, EvaluationError | None]] = {}
        # Compiled value tests retained per cached key so `derive` can
        # re-evaluate a term at just the patched/appended positions.
        self._term_tests: dict[tuple, Any] = {}
        self._all_rows_mask = (1 << self.row_count) - 1

    # ------------------------------------------------------------------ columns
    def index_of(self, attribute: str) -> int:
        """Position of a qualified attribute (raises EvaluationError if absent)."""
        try:
            return self._index[attribute]
        except KeyError:
            raise EvaluationError(f"row has no attribute {attribute!r}") from None

    def has_attribute(self, attribute: str) -> bool:
        """Whether the view carries a column for *attribute*."""
        return attribute in self._index

    def column(self, attribute: str) -> Sequence[Any]:
        """All values of *attribute*, in row order.

        Either a plain tuple or a :class:`TypedColumn`; both are immutable,
        indexable, iterable sequences. Identity is stable: untouched columns
        of a derived view are the same objects as the base view's.
        """
        return self._columns[self.index_of(attribute)]

    @property
    def all_rows_mask(self) -> int:
        """The mask selecting every row (the always-true predicate)."""
        return self._all_rows_mask

    @property
    def cached_term_count(self) -> int:
        """How many distinct term masks are currently cached (diagnostics)."""
        return len(self._term_masks)

    # -------------------------------------------------------------------- masks
    def _term_entry(self, term: Term) -> tuple[int, int, EvaluationError | None]:
        """``(truth mask, error mask, representative error)`` for one term.

        Bit ``i`` of the error mask is set when evaluating the term on row
        ``i`` raised; whether that raise surfaces depends on reachability,
        which the conjunct/predicate combinators decide.
        """
        try:
            key = term.mask_key()
            entry = self._term_masks.get(key)
        except TypeError:  # unhashable constant: evaluate without caching
            key = None
            entry = None
        if entry is None:
            entry = self._build_term_entry(term)
            if key is not None:
                self._term_masks[key] = entry
                self._term_tests[key] = compile_term(term)
        return entry

    def _build_term_entry(self, term: Term) -> tuple[int, int, EvaluationError | None]:
        if self.row_count == 0:
            # The interpreter never evaluates anything on an empty relation,
            # so even a missing attribute goes unnoticed there.
            return (0, 0, None)
        try:
            column = self._columns[self.index_of(term.attribute)]
        except EvaluationError as exc:
            return (0, self._all_rows_mask, exc)  # erroring on every row
        test = compile_term(term)
        if isinstance(column, TypedColumn):
            entry = column.term_entry(term, test)
            if entry is not None:
                COLUMNAR_STATS.typed_term_masks += 1
                return entry
            COLUMNAR_STATS.fallback_term_scans += 1
            column = column.boxed()
        try:
            return (pack_bools([test(value) for value in column]), 0, None)
        except EvaluationError:
            # Rare path: some rows are incomparable — record them per row.
            truth_flags: list[bool] = []
            error_flags: list[bool] = []
            first_error: EvaluationError | None = None
            for value in column:
                try:
                    truth_flags.append(test(value))
                    error_flags.append(False)
                except EvaluationError as exc:
                    truth_flags.append(False)
                    error_flags.append(True)
                    if first_error is None:
                        first_error = exc
            return (pack_bools(truth_flags), pack_bools(error_flags), first_error)

    def term_mask(self, term: Term) -> int:
        """The row-selection mask of one term evaluated standalone on all rows.

        Raises :class:`EvaluationError` if the term cannot be evaluated on
        *any* row — matching the interpreter applying the term to every row.
        """
        mask, error_mask, error = self._term_entry(term)
        if error_mask:
            raise error  # type: ignore[misc]  # error is set whenever error_mask is
        return mask

    def conjunct_mask(self, conjunct: Conjunct, pending: int | None = None) -> int:
        """AND of the conjunct's term masks (empty conjunct selects all rows).

        *pending* restricts evaluation to a subset of rows (used by
        :meth:`predicate_mask` for OR-level short-circuiting). A term's
        evaluation error surfaces only if an erroring row is still alive when
        the term is reached — exactly the interpreter's left-to-right,
        short-circuit semantics.
        """
        alive = self._all_rows_mask if pending is None else pending
        for term in conjunct.terms:
            mask, error_mask, error = self._term_entry(term)
            if error_mask & alive:
                raise error  # type: ignore[misc]
            alive &= mask
            if not alive:
                break
        return alive

    def predicate_mask(self, predicate: DNFPredicate) -> int:
        """OR of the conjunct masks (the always-true predicate selects all rows).

        Rows already satisfied by an earlier conjunct are excluded from later
        conjuncts' evaluation, mirroring ``any()``'s short-circuit in the
        interpreter (a later conjunct's error on such a row never surfaces).
        """
        if predicate.is_true:
            return self._all_rows_mask
        satisfied = 0
        remaining = self._all_rows_mask
        for conjunct in predicate.conjuncts:
            if not remaining:
                break
            satisfied |= self.conjunct_mask(conjunct, remaining)
            remaining = self._all_rows_mask & ~satisfied
        return satisfied

    def selected_positions(self, predicate: DNFPredicate) -> list[int]:
        """Row positions satisfying *predicate*, ascending."""
        mask = self.predicate_mask(predicate)
        if mask == self._all_rows_mask:
            return list(range(self.row_count))
        return mask_positions(mask)

    # ------------------------------------------------------------------- gather
    def gather(self, mask: int, positions: Sequence[int]) -> list[tuple[Any, ...]]:
        """Materialize the rows selected by *mask*, projected to *positions*."""
        columns = [self._columns[p] for p in positions]
        if mask == self._all_rows_mask:
            boxed = [c.boxed() if isinstance(c, TypedColumn) else c for c in columns]
            return list(zip(*boxed)) if boxed else [() for _ in range(self.row_count)]
        selected = mask_positions(mask)
        if columns and len(selected) * 4 >= self.row_count:
            # Large gathers: unbox each column once (C-speed tolist/map)
            # instead of paying per-cell accessor calls.
            columns = [c.boxed() if isinstance(c, TypedColumn) else c for c in columns]
        return [tuple(column[row] for column in columns) for row in selected]

    def clear_term_masks(self) -> None:
        """Drop the cached term masks (the columns themselves are immutable)."""
        self._term_masks.clear()
        self._term_tests.clear()

    # ------------------------------------------------------------------- memory
    def memory_report(self) -> dict[str, Any]:
        """Per-column storage bytes plus the bytes-per-row aggregate.

        Typed columns report buffer + side-table bytes; object columns report
        pointer array + identity-deduplicated boxed values. This is the
        number behind the "bytes per joined row" claim, measured not assumed.
        """
        columns: dict[str, Any] = {}
        total = 0
        for name, column in zip(self.names, self._columns):
            if isinstance(column, TypedColumn):
                info = {
                    "kind": column.kind,
                    "bytes": column.memory_bytes(),
                    "special_count": column.special_count,
                }
            else:
                info = {"kind": "object", "bytes": object_column_bytes(column)}
            columns[name] = info
            total += info["bytes"]
        return {
            "row_count": self.row_count,
            "total_bytes": total,
            "bytes_per_row": (total / self.row_count) if self.row_count else 0.0,
            "columns": columns,
        }

    # ------------------------------------------------------------------- derive
    def derive(
        self,
        patches: Mapping[int, Mapping[int, Any]],
        removed: Sequence[int],
        appended: Sequence[Sequence[Any]],
    ) -> "ColumnarView":
        """A copy-on-write view with cells patched, rows removed and rows added.

        *patches* maps base row positions to ``{column position: new value}``;
        *removed* lists base row positions to drop; *appended* holds full new
        value rows (in column order) placed after the surviving base rows —
        exactly the shape :meth:`JoinedRelation.apply_delta` produces.

        Columns untouched by any change are shared with the base view by
        reference, and so are their cached term-mask entries. Affected cached
        masks are *patched*, not recomputed: changed bits are re-evaluated at
        the affected positions only, removals compact the masks with O(|removed|)
        big-int shifts, and appended rows contribute freshly evaluated bits —
        O(|Δ|) term evaluations plus O(rows/64) word operations per mask,
        versus O(rows) Python-level evaluations for a cold rebuild. Error
        masks (and the short-circuit error semantics they encode) are
        maintained the same way. Typed columns copy their compact buffers
        (a C-level memcpy) rather than re-boxing values.
        """
        removed_descending = sorted(removed, reverse=True)
        structural = bool(removed_descending or appended)
        survivor_count = self.row_count - len(removed_descending)
        new_row_count = survivor_count + len(appended)

        by_column: dict[int, list[tuple[int, Any]]] = {}
        for position, cells in patches.items():
            for column_position, value in cells.items():
                by_column.setdefault(column_position, []).append((position, value))

        cls = type(self)
        view = cls.__new__(cls)
        view.names = self.names
        view._index = self._index
        view.row_count = new_row_count
        view._all_rows_mask = (1 << new_row_count) - 1

        columns: list[Any] = []
        for column_position, column in enumerate(self._columns):
            cell_patches = by_column.get(column_position)
            if not structural and not cell_patches:
                columns.append(column)  # shared with the base view
                continue
            if isinstance(column, TypedColumn):
                appended_values = (
                    [row[column_position] for row in appended] if appended else ()
                )
                columns.append(
                    column.derive(cell_patches or (), removed_descending, appended_values)
                )
                continue
            values = list(column)
            if cell_patches:
                for position, value in cell_patches:
                    values[position] = value
            for position in removed_descending:
                del values[position]
            if appended:
                values.extend(row[column_position] for row in appended)
            columns.append(tuple(values))
        view._columns = columns

        view._term_masks = {}
        view._term_tests = {}
        for key, entry in self._term_masks.items():
            column_position = self._index.get(key[0])
            test = self._term_tests.get(key)
            if column_position is None or test is None:
                # Missing-attribute error entries (or untracked tests) are
                # rebuilt lazily against the derived view instead.
                continue
            cell_patches = by_column.get(column_position)
            if not structural and not cell_patches:
                view._term_masks[key] = entry
                view._term_tests[key] = test
                continue
            mask, error_mask, error = entry
            if cell_patches:
                for position, value in cell_patches:
                    bit = 1 << position
                    truth, raised = _evaluate_guarded(test, value)
                    mask = (mask | bit) if truth else (mask & ~bit)
                    if raised is not None:
                        error_mask |= bit
                        error = error or raised
                    else:
                        error_mask &= ~bit
            for position in removed_descending:
                low = (1 << position) - 1
                mask = (mask & low) | ((mask >> (position + 1)) << position)
                error_mask = (error_mask & low) | ((error_mask >> (position + 1)) << position)
            if appended:
                added_mask = 0
                added_errors = 0
                for offset, row in enumerate(appended):
                    truth, raised = _evaluate_guarded(test, row[column_position])
                    if truth:
                        added_mask |= 1 << offset
                    if raised is not None:
                        added_errors |= 1 << offset
                        error = error or raised
                mask |= added_mask << survivor_count
                error_mask |= added_errors << survivor_count
            if not error_mask:
                error = None
            view._term_masks[key] = (mask, error_mask, error)
            view._term_tests[key] = test
        return view

    # ----------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Picklable state: the immutable columns, without the mask caches.

        Compiled term tests are closures and cannot cross a process boundary,
        and a term-mask entry without its retained test would silently break
        :meth:`derive` (the entry would exist but could never be patched), so
        both caches are dropped together. A rehydrated view is a *cold* view
        over the same columns; its masks rebuild lazily — which is why the
        parallel round planner warms the base view once per worker before
        evaluating any delta-derived candidate against it. Typed columns ship
        their compact buffers (their lazy index/zone structures are dropped
        and rebuilt on demand), keeping the snapshot payload small.
        """
        return {
            "names": self.names,
            "row_count": self.row_count,
            "_index": self._index,
            "_columns": self._columns,
            "_all_rows_mask": self._all_rows_mask,
        }

    def __setstate__(self, state: dict) -> None:
        self.names = state["names"]
        self.row_count = state["row_count"]
        self._index = state["_index"]
        self._columns = state["_columns"]
        self._all_rows_mask = state["_all_rows_mask"]
        self._term_masks = {}
        self._term_tests = {}

    # --------------------------------------------------------- buffer export
    def export_columns(self) -> tuple[dict[str, Any], list[bytes]]:
        """Split the view into a picklable descriptor + raw typed buffers.

        Typed columns contribute one raw payload each (indexed from the
        descriptor); object-tuple columns ride inside the descriptor — they
        have no compact buffer form. The descriptor/payload pair is what the
        shared-memory snapshot writes into its block, and
        :meth:`from_exported_columns` rebuilds an equivalent *cold* view
        (empty mask caches, lazy structures unbuilt) on the attaching side.
        """
        payloads: list[bytes] = []
        columns: list[dict[str, Any]] = []
        for column in self._columns:
            if isinstance(column, TypedColumn):
                meta, payload = export_typed_column(column)
                columns.append({"typed": meta, "payload": len(payloads)})
                payloads.append(payload)
            else:
                columns.append({"object": tuple(column)})
        meta = {"names": self.names, "row_count": self.row_count, "columns": columns}
        return meta, payloads

    @classmethod
    def from_exported_columns(
        cls, meta: Mapping[str, Any], buffers: Sequence["bytes | memoryview"]
    ) -> "ColumnarView":
        """Rebuild a view from :meth:`export_columns` output.

        *buffers* holds one bytes-like object per exported payload, in the
        order the descriptor's ``payload`` indexes reference — typically
        memoryview slices over one shared-memory block.
        """
        view = object.__new__(cls)
        view.names = tuple(meta["names"])
        view._index = {name: position for position, name in enumerate(view.names)}
        view.row_count = meta["row_count"]
        columns: list[Any] = []
        for spec in meta["columns"]:
            if "typed" in spec:
                columns.append(typed_column_from_buffer(spec["typed"], buffers[spec["payload"]]))
            else:
                columns.append(spec["object"])
        view._columns = columns
        view._term_masks = {}
        view._term_tests = {}
        view._all_rows_mask = (1 << view.row_count) - 1
        return view

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({len(self.names)} columns, {self.row_count} rows, "
            f"{len(self._term_masks)} cached masks)"
        )


class ColumnarViewReference(ColumnarView):
    """The object-tuple layout for every column — the differential oracle.

    Semantically identical to :class:`ColumnarView`; used by tests and
    benchmarks to pin the typed representation bit-for-bit and to quantify
    the storage/footprint difference.
    """

    __slots__ = ()

    _TYPED = False
