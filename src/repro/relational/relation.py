"""Relation instances: immutable tuples and bags of tuples.

QFE reasons about *bags* (the paper's default duplicate-preserving semantics,
Section 5) as well as sets (Section 6.1). :class:`Relation` therefore stores
an ordered list of :class:`Tuple` values and offers both bag-equality
(multiset comparison) and set-equality.

Tuples are immutable; modifications produce new tuples. Every tuple carries a
stable ``tuple_id`` assigned by the containing relation, which the edit model
and the QFE delta presentation use to describe "tuple 3 of Employee had its
salary changed" in a way users can follow.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError, TypeMismatchError
from repro.relational.schema import Attribute, TableSchema
from repro.relational.types import (
    canonical_value,
    coerce_value,
    infer_type,
    value_sort_key,
    values_equal,
)

__all__ = ["Tuple", "Relation"]


class Tuple:
    """An immutable row of a relation.

    Values are stored in the order of the owning schema's attributes. The
    tuple does not know its schema; the containing :class:`Relation` provides
    name-based access through :meth:`Relation.value_of`.
    """

    __slots__ = ("values", "tuple_id")

    def __init__(self, values: Sequence[Any], tuple_id: int | None = None) -> None:
        self.values: tuple[Any, ...] = tuple(values)
        self.tuple_id = tuple_id

    def replace(self, index: int, value: Any) -> "Tuple":
        """Return a copy with the value at *index* replaced (same tuple_id)."""
        new_values = list(self.values)
        new_values[index] = value
        return Tuple(new_values, self.tuple_id)

    def project(self, indexes: Sequence[int]) -> tuple[Any, ...]:
        """Return the values at the given positional indexes."""
        return tuple(self.values[i] for i in indexes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        if len(self.values) != len(other.values):
            return False
        return all(values_equal(a, b) for a, b in zip(self.values, other.values))

    def __hash__(self) -> int:
        # canonical_value collapses equal numerics (1 vs 1.0) without the
        # precision loss of a float() round-trip, keeping the hash consistent
        # with the exact equality above even for integers ≥ 2^53.
        return hash(tuple(canonical_value(v) for v in self.values))

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tuple({list(self.values)!r}, id={self.tuple_id})"


class Relation:
    """A named bag of tuples conforming to a :class:`TableSchema`."""

    def __init__(self, schema: TableSchema, rows: Iterable[Sequence[Any] | Mapping[str, Any]] = ()) -> None:
        self.schema = schema
        self._tuples: list[Tuple] = []
        self._next_id = 0
        for row in rows:
            self.insert(row)

    # ----------------------------------------------------------- construction
    @classmethod
    def from_rows(
        cls,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]],
        *,
        primary_key: Sequence[str] | None = None,
    ) -> "Relation":
        """Build a relation from raw rows, inferring attribute types."""
        materialized = [list(row) for row in rows]
        for row in materialized:
            if len(row) != len(columns):
                raise SchemaError(
                    f"row {row!r} has {len(row)} values but {len(columns)} columns were declared"
                )
        attributes = []
        for i, column in enumerate(columns):
            attributes.append(Attribute(column, infer_type([row[i] for row in materialized])))
        schema = TableSchema(name, attributes, primary_key=primary_key)
        return cls(schema, materialized)

    @classmethod
    def from_dicts(
        cls,
        name: str,
        rows: Sequence[Mapping[str, Any]],
        *,
        columns: Sequence[str] | None = None,
        primary_key: Sequence[str] | None = None,
    ) -> "Relation":
        """Build a relation from a list of dictionaries, inferring types."""
        if columns is None:
            if not rows:
                raise SchemaError("cannot infer columns from an empty list of dicts")
            columns = list(rows[0].keys())
        raw_rows = [[row.get(column) for column in columns] for row in rows]
        return cls.from_rows(name, columns, raw_rows, primary_key=primary_key)

    @classmethod
    def adopt_tuples(cls, schema: TableSchema, tuples: Iterable[Tuple]) -> "Relation":
        """Internal fast constructor: adopt pre-built :class:`Tuple` objects verbatim.

        Used by the incremental join-maintenance layer, which patches a few
        tuples of a materialized join and *shares* the rest with the base
        instance. Callers must guarantee the tuples conform to *schema* and
        carry unique ids; ids may be non-contiguous.
        """
        relation = cls(schema)
        relation._tuples = list(tuples)
        relation._next_id = 1 + max((t.tuple_id for t in relation._tuples if t.tuple_id is not None), default=-1)
        return relation

    def empty_like(self) -> "Relation":
        """A new, empty relation with the same schema."""
        return Relation(self.schema)

    def copy(self) -> "Relation":
        """A deep copy preserving tuple ids."""
        clone = Relation(self.schema)
        clone._tuples = [Tuple(t.values, t.tuple_id) for t in self._tuples]
        clone._next_id = self._next_id
        return clone

    # ----------------------------------------------------------- modification
    def insert(self, row: Sequence[Any] | Mapping[str, Any]) -> Tuple:
        """Insert a row (sequence in attribute order, or mapping by name)."""
        if isinstance(row, Mapping):
            values = [row.get(name) for name in self.schema.attribute_names]
        else:
            values = list(row)
            if len(values) != self.schema.arity:
                raise SchemaError(
                    f"row has {len(values)} values but table {self.schema.name!r} "
                    f"has arity {self.schema.arity}"
                )
        coerced = []
        for attribute, value in zip(self.schema.attributes, values):
            try:
                coerced.append(coerce_value(value, attribute.type, nullable=attribute.nullable))
            except TypeMismatchError as exc:
                raise TypeMismatchError(
                    f"{self.schema.name}.{attribute.name}: {exc}"
                ) from None
        new_tuple = Tuple(coerced, self._next_id)
        self._next_id += 1
        self._tuples.append(new_tuple)
        return new_tuple

    def extend_raw(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append pre-validated rows without per-cell type coercion.

        Fast path for the columnar evaluator: projected values copied
        verbatim out of an already-coerced relation conform to the output
        schema by construction, so re-coercing every cell is pure overhead.
        Callers must guarantee the rows match the schema's arity and types.
        """
        tuples = self._tuples
        next_id = self._next_id
        for row in rows:
            tuples.append(Tuple(row, next_id))
            next_id += 1
        self._next_id = next_id

    def delete(self, tuple_id: int) -> Tuple:
        """Remove and return the tuple with the given id."""
        for i, existing in enumerate(self._tuples):
            if existing.tuple_id == tuple_id:
                return self._tuples.pop(i)
        raise SchemaError(f"relation {self.schema.name!r} has no tuple with id {tuple_id}")

    def update_value(self, tuple_id: int, attribute: str, value: Any) -> Tuple:
        """Replace one attribute value of the identified tuple; returns the new tuple."""
        index = self.schema.index_of(attribute)
        declared = self.schema.attribute(attribute)
        coerced = coerce_value(value, declared.type, nullable=declared.nullable)
        for i, existing in enumerate(self._tuples):
            if existing.tuple_id == tuple_id:
                updated = existing.replace(index, coerced)
                self._tuples[i] = updated
                return updated
        raise SchemaError(f"relation {self.schema.name!r} has no tuple with id {tuple_id}")

    def replace_tuple(self, tuple_id: int, row: Sequence[Any]) -> Tuple:
        """Replace the identified tuple's values entirely (keeping its id)."""
        if len(row) != self.schema.arity:
            raise SchemaError("replacement row has wrong arity")
        coerced = [
            coerce_value(value, attribute.type, nullable=attribute.nullable)
            for attribute, value in zip(self.schema.attributes, row)
        ]
        for i, existing in enumerate(self._tuples):
            if existing.tuple_id == tuple_id:
                updated = Tuple(coerced, tuple_id)
                self._tuples[i] = updated
                return updated
        raise SchemaError(f"relation {self.schema.name!r} has no tuple with id {tuple_id}")

    # ----------------------------------------------------------------- access
    @property
    def name(self) -> str:
        """The relation's (table's) name."""
        return self.schema.name

    @property
    def tuples(self) -> tuple[Tuple, ...]:
        """All tuples in insertion order."""
        return tuple(self._tuples)

    @property
    def next_tuple_id(self) -> int:
        """The id the next inserted tuple will receive (ids are never reused)."""
        return self._next_id

    def tuple_by_id(self, tuple_id: int) -> Tuple:
        """The tuple with the given id (raises :class:`SchemaError` if absent)."""
        for existing in self._tuples:
            if existing.tuple_id == tuple_id:
                return existing
        raise SchemaError(f"relation {self.schema.name!r} has no tuple with id {tuple_id}")

    def value_of(self, row: Tuple, attribute: str) -> Any:
        """The value of *attribute* in *row* (by name)."""
        return row.values[self.schema.index_of(attribute)]

    def column(self, attribute: str) -> list[Any]:
        """All values of *attribute*, in tuple order."""
        index = self.schema.index_of(attribute)
        return [t.values[index] for t in self._tuples]

    def active_domain(self, attribute: str) -> list[Any]:
        """The distinct non-NULL values of *attribute*, deterministically ordered."""
        distinct = {v for v in self.column(attribute) if v is not None}
        return sorted(distinct, key=value_sort_key)

    def rows(self) -> list[tuple[Any, ...]]:
        """Raw value tuples (without ids), in insertion order."""
        return [t.values for t in self._tuples]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by attribute name."""
        names = self.schema.attribute_names
        return [dict(zip(names, t.values)) for t in self._tuples]

    def select(self, predicate: Callable[[Tuple], bool]) -> "Relation":
        """A new relation containing the tuples satisfying *predicate*."""
        result = Relation(self.schema)
        for t in self._tuples:
            if predicate(t):
                result._tuples.append(Tuple(t.values, result._next_id))
                result._next_id += 1
        return result

    # -------------------------------------------------------------- equality
    def bag_of_rows(self) -> Counter:
        """A multiset of the raw value rows (the paper's bag semantics)."""
        return Counter(self._normalize_row(t.values) for t in self._tuples)

    def set_of_rows(self) -> frozenset:
        """The set of distinct raw value rows (Section 6.1 set semantics)."""
        return frozenset(self._normalize_row(t.values) for t in self._tuples)

    @staticmethod
    def _normalize_row(values: tuple[Any, ...]) -> tuple[Any, ...]:
        # Exact canonicalization: 1 and 1.0 share one multiset key, while
        # distinct integers ≥ 2^53 (which a float() round-trip would merge)
        # stay distinct — bag equality must never equate different rows.
        return tuple(canonical_value(v) for v in values)

    def bag_equal(self, other: "Relation") -> bool:
        """Multiset equality of rows (column order must match)."""
        return self.bag_of_rows() == other.bag_of_rows()

    def set_equal(self, other: "Relation") -> bool:
        """Set equality of rows (duplicates ignored)."""
        return self.set_of_rows() == other.set_of_rows()

    # ---------------------------------------------------------------- dunder
    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __contains__(self, row: Sequence[Any]) -> bool:
        target = self._normalize_row(tuple(row))
        return target in self.bag_of_rows()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.schema.name}, {len(self)} tuples)"

    def pretty(self, *, max_rows: int | None = 20) -> str:
        """A fixed-width text rendering of the relation (for examples and deltas)."""
        names = list(self.schema.attribute_names)
        rows = [[_format_value(v) for v in t.values] for t in self._tuples]
        if max_rows is not None and len(rows) > max_rows:
            shown = rows[:max_rows]
            truncated = len(rows) - max_rows
        else:
            shown = rows
            truncated = 0
        widths = [len(n) for n in names]
        for row in shown:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(n.ljust(widths[i]) for i, n in enumerate(names))
        separator = "-+-".join("-" * w for w in widths)
        lines = [self.schema.name, header, separator]
        for row in shown:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if truncated:
            lines.append(f"... ({truncated} more rows)")
        return "\n".join(lines)


def _format_value(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
