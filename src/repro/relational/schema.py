"""Schema objects: attributes, table schemas, keys and database schemas.

The QFE paper assumes databases with explicit (or inferred) foreign-key
relationships because its Database Generator reasons over the foreign-key
join of all relations and uses join indexes to track side effects of base
tuple modifications (Section 5.4.1). The schema layer therefore models:

* :class:`Attribute` — a named, typed column;
* :class:`TableSchema` — an ordered list of attributes plus an optional
  primary key;
* :class:`ForeignKey` — a (child table, child columns) → (parent table,
  parent columns) reference;
* :class:`DatabaseSchema` — the collection of table schemas and foreign keys,
  exposing the foreign-key *join graph* used by the QBO join enumerator and
  the QFE database generator.

Qualified attribute names use the ``table.column`` convention, which is also
how joined relations name their columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

from repro.exceptions import SchemaError
from repro.relational.types import AttributeType

__all__ = [
    "Attribute",
    "TableSchema",
    "ForeignKey",
    "DatabaseSchema",
    "qualify",
    "split_qualified",
]


def qualify(table: str, column: str) -> str:
    """Return the qualified name ``table.column``."""
    return f"{table}.{column}"


def split_qualified(name: str) -> tuple[str | None, str]:
    """Split a possibly-qualified attribute name into ``(table, column)``.

    Unqualified names return ``(None, name)``.
    """
    if "." in name:
        table, column = name.split(".", 1)
        return table, column
    return None, name


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    type: AttributeType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if not isinstance(self.type, AttributeType):
            raise SchemaError(f"attribute {self.name!r} has invalid type {self.type!r}")

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute with a different name."""
        return Attribute(new_name, self.type, self.nullable)


class TableSchema:
    """An ordered collection of attributes with an optional primary key."""

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute],
        *,
        primary_key: Iterable[str] | None = None,
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.attributes: tuple[Attribute, ...] = tuple(attributes)
        if not self.attributes:
            raise SchemaError(f"table {name!r} must have at least one attribute")
        names = [attribute.name for attribute in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate attribute names")
        self._by_name = {attribute.name: attribute for attribute in self.attributes}
        self._index = {attribute.name: i for i, attribute in enumerate(self.attributes)}
        self.primary_key: tuple[str, ...] = tuple(primary_key or ())
        for column in self.primary_key:
            if column not in self._by_name:
                raise SchemaError(
                    f"primary key column {column!r} is not an attribute of table {name!r}"
                )

    # ------------------------------------------------------------------ access
    @property
    def attribute_names(self) -> tuple[str, ...]:
        """The attribute names in declaration order."""
        return tuple(attribute.name for attribute in self.attributes)

    @property
    def arity(self) -> int:
        """The number of attributes (the edit cost of inserting/deleting a tuple)."""
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute named *name* (raises :class:`SchemaError` if absent)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no attribute {name!r}") from None

    def has_attribute(self, name: str) -> bool:
        """Whether an attribute with this name exists."""
        return name in self._by_name

    def index_of(self, name: str) -> int:
        """Positional index of the attribute named *name*."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no attribute {name!r}") from None

    def qualified_names(self) -> tuple[str, ...]:
        """All attribute names qualified with this table's name."""
        return tuple(qualify(self.name, attribute.name) for attribute in self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.primary_key == other.primary_key
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.primary_key))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        columns = ", ".join(f"{a.name}:{a.type.value}" for a in self.attributes)
        return f"TableSchema({self.name}: {columns})"


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key reference from child columns to parent columns."""

    child_table: str
    child_columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.child_columns) != len(self.parent_columns):
            raise SchemaError("foreign key must reference the same number of columns")
        if not self.child_columns:
            raise SchemaError("foreign key must reference at least one column")

    @property
    def name(self) -> str:
        """A readable identifier for the foreign key."""
        child = ",".join(self.child_columns)
        parent = ",".join(self.parent_columns)
        return f"{self.child_table}({child})->{self.parent_table}({parent})"

    def column_pairs(self) -> tuple[tuple[str, str], ...]:
        """``(child_column, parent_column)`` pairs."""
        return tuple(zip(self.child_columns, self.parent_columns))


class DatabaseSchema:
    """The schema of a database: tables and foreign keys.

    The schema exposes the *foreign-key join graph*: an undirected multigraph
    whose nodes are table names and whose edges are foreign keys. Both the
    QBO join enumerator (Section 4) and the QFE full foreign-key join
    (Section 5) traverse this graph.
    """

    def __init__(
        self,
        tables: Iterable[TableSchema],
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        self.tables: dict[str, TableSchema] = {}
        for table in tables:
            if table.name in self.tables:
                raise SchemaError(f"duplicate table name {table.name!r}")
            self.tables[table.name] = table
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            self._validate_foreign_key(fk)

    def _validate_foreign_key(self, fk: ForeignKey) -> None:
        if fk.child_table not in self.tables:
            raise SchemaError(f"foreign key references unknown child table {fk.child_table!r}")
        if fk.parent_table not in self.tables:
            raise SchemaError(f"foreign key references unknown parent table {fk.parent_table!r}")
        child = self.tables[fk.child_table]
        parent = self.tables[fk.parent_table]
        for child_column, parent_column in fk.column_pairs():
            if not child.has_attribute(child_column):
                raise SchemaError(
                    f"foreign key column {child_column!r} missing from {fk.child_table!r}"
                )
            if not parent.has_attribute(parent_column):
                raise SchemaError(
                    f"foreign key column {parent_column!r} missing from {fk.parent_table!r}"
                )

    # ------------------------------------------------------------------ access
    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all tables in declaration order."""
        return tuple(self.tables)

    def table(self, name: str) -> TableSchema:
        """The table schema named *name* (raises :class:`SchemaError` if absent)."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"database has no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self.tables

    def foreign_keys_of(self, table_name: str) -> tuple[ForeignKey, ...]:
        """Foreign keys whose child *or* parent is *table_name*."""
        return tuple(
            fk
            for fk in self.foreign_keys
            if fk.child_table == table_name or fk.parent_table == table_name
        )

    def foreign_keys_between(self, left: str, right: str) -> tuple[ForeignKey, ...]:
        """Foreign keys connecting the two tables, in either direction."""
        return tuple(
            fk
            for fk in self.foreign_keys
            if {fk.child_table, fk.parent_table} == {left, right}
        )

    def resolve_attribute(self, name: str) -> tuple[str, str]:
        """Resolve a possibly-qualified attribute name to ``(table, column)``.

        Unqualified names are resolved by searching all tables; ambiguity or
        absence raises :class:`SchemaError`.
        """
        table, column = split_qualified(name)
        if table is not None:
            self.table(table).attribute(column)
            return table, column
        owners = [t.name for t in self.tables.values() if t.has_attribute(column)]
        if not owners:
            raise SchemaError(f"no table has an attribute named {column!r}")
        if len(owners) > 1:
            raise SchemaError(
                f"attribute {column!r} is ambiguous between tables {sorted(owners)}"
            )
        return owners[0], column

    # ------------------------------------------------------------- join graph
    def join_graph(self) -> nx.MultiGraph:
        """The undirected foreign-key join graph (nodes = tables, edges = FKs)."""
        graph = nx.MultiGraph()
        graph.add_nodes_from(self.tables)
        for fk in self.foreign_keys:
            graph.add_edge(fk.child_table, fk.parent_table, foreign_key=fk)
        return graph

    def is_join_connected(self, table_names: Iterable[str]) -> bool:
        """Whether the given tables form a connected subgraph of the join graph."""
        names = list(table_names)
        if not names:
            return False
        if len(names) == 1:
            return self.has_table(names[0])
        subgraph = self.join_graph().subgraph(names)
        return len(subgraph) == len(names) and nx.is_connected(nx.Graph(subgraph))

    def spanning_foreign_keys(self, table_names: Iterable[str]) -> tuple[ForeignKey, ...]:
        """A set of foreign keys forming a spanning tree over *table_names*.

        Raises :class:`SchemaError` when the tables are not join-connected.
        """
        names = list(dict.fromkeys(table_names))
        if not self.is_join_connected(names):
            raise SchemaError(f"tables {names} are not connected by foreign keys")
        if len(names) <= 1:
            return ()
        subgraph = nx.Graph()
        for left in names:
            for right in names:
                if left < right and self.foreign_keys_between(left, right):
                    subgraph.add_edge(left, right)
        subgraph.add_nodes_from(names)
        tree = nx.minimum_spanning_tree(subgraph)
        picked: list[ForeignKey] = []
        for left, right in tree.edges():
            picked.append(self.foreign_keys_between(left, right)[0])
        return tuple(picked)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self.tables == other.tables and set(self.foreign_keys) == set(other.foreign_keys)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatabaseSchema(tables={list(self.tables)}, foreign_keys={len(self.foreign_keys)})"
