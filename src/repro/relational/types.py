"""Attribute types and value coercion for the in-memory relational engine.

The engine supports the small set of scalar types that the QFE paper's
workloads need: integers, floating-point numbers, strings and booleans. Every
attribute additionally admits ``None`` (SQL ``NULL``) unless declared
``nullable=False`` at the schema level.

The module also provides helpers used throughout the library:

* :func:`coerce_value` — validate/convert a Python value to an attribute type;
* :func:`is_numeric` — whether a type supports ordered interval reasoning
  (used by the tuple-class domain partitioner);
* :func:`value_sort_key` — a total order over possibly-``None`` values so that
  relations can be printed and diffed deterministically.
"""

from __future__ import annotations

import enum
import math
from typing import Any

from repro.exceptions import TypeMismatchError

__all__ = [
    "AttributeType",
    "INT64_MIN",
    "INT64_MAX",
    "int64_representable",
    "coerce_value",
    "is_numeric",
    "python_type_of",
    "infer_type",
    "value_sort_key",
    "values_equal",
    "canonical_value",
    "float_literal",
]


class AttributeType(enum.Enum):
    """Scalar types supported by the relational engine."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BOOLEAN = "boolean"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def sql_name(self) -> str:
        """The SQLite column affinity used when exporting to SQL."""
        return {
            AttributeType.INTEGER: "INTEGER",
            AttributeType.FLOAT: "REAL",
            AttributeType.STRING: "TEXT",
            AttributeType.BOOLEAN: "INTEGER",
        }[self]


#: Bounds of a signed 64-bit integer: the representable range of the typed
#: int column buffer and of SQLite INTEGER storage. Python ints outside this
#: range stay exact — the columnar layer keeps them boxed in a side table and
#: the SQL pushdown backend refuses to ship them.
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1


def int64_representable(value: Any) -> bool:
    """Whether *value* is a plain int that fits a signed 64-bit buffer cell.

    Booleans are excluded on purpose: they are stored bit-packed with their
    own column kind, and silently storing ``True`` as ``1`` would change what
    ``column[i]`` returns.
    """
    return type(value) is int and INT64_MIN <= value <= INT64_MAX


_NUMERIC_TYPES = frozenset({AttributeType.INTEGER, AttributeType.FLOAT})


def is_numeric(attribute_type: AttributeType) -> bool:
    """Return ``True`` when the type supports ordered (interval) reasoning."""
    return attribute_type in _NUMERIC_TYPES


def python_type_of(attribute_type: AttributeType) -> type:
    """Return the canonical Python type for an :class:`AttributeType`."""
    return {
        AttributeType.INTEGER: int,
        AttributeType.FLOAT: float,
        AttributeType.STRING: str,
        AttributeType.BOOLEAN: bool,
    }[attribute_type]


def infer_type(values: list[Any]) -> AttributeType:
    """Infer an :class:`AttributeType` from a sample of Python values.

    ``None`` values are ignored. Preference order: boolean, integer, float,
    string; a mix of integers and floats infers ``FLOAT``; anything else
    infers ``STRING``.
    """
    seen_int = seen_float = seen_bool = seen_str = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            seen_bool = True
        elif isinstance(value, int):
            seen_int = True
        elif isinstance(value, float):
            seen_float = True
        else:
            seen_str = True
    if seen_str:
        return AttributeType.STRING
    if seen_float:
        return AttributeType.FLOAT
    if seen_int:
        return AttributeType.INTEGER
    if seen_bool:
        return AttributeType.BOOLEAN
    return AttributeType.STRING


def coerce_value(value: Any, attribute_type: AttributeType, *, nullable: bool = True) -> Any:
    """Validate *value* against *attribute_type* and return the stored form.

    Raises :class:`TypeMismatchError` when the value cannot be represented by
    the type. Integers are accepted for ``FLOAT`` attributes (and converted);
    booleans are only accepted for ``BOOLEAN`` attributes to avoid the classic
    ``bool``-is-an-``int`` surprise.
    """
    if value is None:
        if not nullable:
            raise TypeMismatchError("NULL is not allowed for a non-nullable attribute")
        return None

    if attribute_type is AttributeType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise TypeMismatchError(f"expected boolean, got {value!r}")

    if isinstance(value, bool):
        raise TypeMismatchError(
            f"boolean value {value!r} is not valid for a {attribute_type.value} attribute"
        )

    if attribute_type is AttributeType.INTEGER:
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeMismatchError(f"expected integer, got {value!r}")

    if attribute_type is AttributeType.FLOAT:
        if isinstance(value, (int, float)):
            as_float = float(value)
            if math.isnan(as_float):
                raise TypeMismatchError("NaN is not a valid attribute value")
            return as_float
        raise TypeMismatchError(f"expected float, got {value!r}")

    if attribute_type is AttributeType.STRING:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"expected string, got {value!r}")

    raise TypeMismatchError(f"unsupported attribute type {attribute_type!r}")  # pragma: no cover


def values_equal(left: Any, right: Any) -> bool:
    """Value equality used by the engine (NULL equals only NULL).

    Numeric comparisons rely on Python's exact cross-type ``==`` (an ``int``
    and a ``float`` compare by their true mathematical values), never on a
    ``float()`` round-trip: converting an integer ≥ 2^53 to a double loses
    precision, which would make distinct large integers compare equal.
    """
    if left is None or right is None:
        return left is None and right is None
    return left == right


def canonical_value(value: Any) -> Any:
    """The canonical stored form of a value for hashing/multiset keys.

    Equal numeric values must share one canonical representation so that bag
    semantics treats ``1`` and ``1.0`` as the same row value. Integral finite
    floats collapse onto the (exactly equal) ``int``; everything else —
    including arbitrarily large integers, which a ``float()`` round-trip
    would corrupt above 2^53 — is preserved exactly. Booleans pass through
    unchanged (Python already hashes ``True`` consistently with ``1``).
    """
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def float_literal(value: float) -> str:
    """Render a float with full round-trip precision (for SQL and display).

    ``repr`` emits the shortest string that parses back to the exact same
    double, so the SQL shipped to an oracle backend selects exactly the rows
    the in-memory evaluator selects — ``"{:g}"``-style 6-significant-digit
    formatting silently changes constants like ``0.1234567``. Infinities are
    rendered as the out-of-range literals SQLite evaluates to ``±Inf``.
    """
    if math.isinf(value):
        return "9e999" if value > 0 else "-9e999"
    return repr(value)


def value_sort_key(value: Any) -> tuple:
    """A total-order sort key over heterogeneous, possibly-NULL values.

    NULLs sort first, then booleans, then numbers, then strings. This is only
    used for deterministic presentation (printing, diffing), never for query
    semantics.
    """
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        # Exact cross-type ordering: no float() round-trip, so distinct huge
        # integers (≥ 2^53) never collapse onto one sort position.
        return (2, value)
    return (3, str(value))
