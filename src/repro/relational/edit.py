"""The relation edit model of Section 3: edit operations and ``minEdit``.

The paper quantifies the difference between two instances of a relation by
the minimum cost of transforming one into the other using three operations:

* **E1** — modify one attribute value of a tuple (cost 1);
* **E2** — insert a new tuple (cost = relation arity);
* **E3** — delete a tuple (cost = relation arity).

``minEdit(T, T')`` is therefore a minimum-cost assignment problem: each tuple
of ``T`` is either matched to a tuple of ``T'`` (paying one per differing
attribute) or deleted; unmatched tuples of ``T'`` are inserted. We solve it
exactly with the Hungarian algorithm (``scipy.optimize.linear_sum_assignment``)
on a square cost matrix padded with delete/insert costs.

``minEdit(D, D')`` over whole databases is the sum over modified relations
(Section 3), and the module also exposes the concrete edit scripts used by
the Result Feedback module to present ``Δ(D, R_i)`` diffs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.relational.database import Database
from repro.relational.relation import Relation, Tuple
from repro.relational.types import values_equal

__all__ = [
    "EditKind",
    "EditOperation",
    "EditScript",
    "tuple_distance",
    "min_edit_relation",
    "min_edit_script",
    "min_edit_database",
    "modified_relation_names",
]


class EditKind(enum.Enum):
    """The three edit operations of Section 3."""

    MODIFY = "modify"  # E1
    INSERT = "insert"  # E2
    DELETE = "delete"  # E3


@dataclass(frozen=True)
class EditOperation:
    """One edit step transforming a source relation towards a target relation."""

    kind: EditKind
    relation: str
    attribute: str | None = None
    old_value: Any = None
    new_value: Any = None
    source_row: tuple | None = None
    target_row: tuple | None = None
    cost: int = 1

    def describe(self) -> str:
        """A one-line human-readable description (used in delta presentations)."""
        if self.kind is EditKind.MODIFY:
            return (
                f"{self.relation}: change {self.attribute} from "
                f"{self.old_value!r} to {self.new_value!r} in row {self.source_row!r}"
            )
        if self.kind is EditKind.INSERT:
            return f"{self.relation}: insert row {self.target_row!r}"
        return f"{self.relation}: delete row {self.source_row!r}"


@dataclass(frozen=True)
class EditScript:
    """An ordered list of edit operations with its total cost."""

    operations: tuple[EditOperation, ...]

    @property
    def cost(self) -> int:
        """The total edit cost (the paper's ``minEdit`` value when minimal)."""
        return sum(op.cost for op in self.operations)

    @property
    def modification_count(self) -> int:
        """Number of E1 (attribute modification) operations."""
        return sum(1 for op in self.operations if op.kind is EditKind.MODIFY)

    def describe(self) -> list[str]:
        """Human-readable lines for every operation."""
        return [op.describe() for op in self.operations]

    def row_changes(self) -> list[tuple[EditKind, tuple | None, tuple | None]]:
        """Per-*tuple* changes ``(kind, source_row, target_row)``.

        :func:`min_edit_script` emits one E1 operation per modified cell, with
        all cells of one matched tuple pair appearing contiguously and each
        attribute at most once per pair; this view collapses each such run
        into a single MODIFY row change, so consumers that operate at tuple
        granularity (e.g. deriving a
        :class:`~repro.relational.delta.TupleDelta`) see one entry per tuple.
        A repeated attribute within a run of identical ``(source, target)``
        rows marks the start of the *next* matched pair — duplicate rows
        modified identically (legal under bag semantics) stay distinct.
        """
        changes: list[tuple[EditKind, tuple | None, tuple | None]] = []
        run_attributes: set[str | None] = set()
        for op in self.operations:
            if (
                op.kind is EditKind.MODIFY
                and changes
                and changes[-1][0] is EditKind.MODIFY
                and changes[-1][1] == op.source_row
                and changes[-1][2] == op.target_row
                and op.attribute not in run_attributes
            ):
                run_attributes.add(op.attribute)
                continue  # same matched tuple pair: another changed cell
            run_attributes = {op.attribute} if op.kind is EditKind.MODIFY else set()
            changes.append((op.kind, op.source_row, op.target_row))
        return changes

    def __len__(self) -> int:
        return len(self.operations)


def tuple_distance(left: Tuple | tuple, right: Tuple | tuple) -> int:
    """Number of attribute positions where the two rows differ (E1 cost)."""
    left_values = left.values if isinstance(left, Tuple) else tuple(left)
    right_values = right.values if isinstance(right, Tuple) else tuple(right)
    if len(left_values) != len(right_values):
        raise ValueError("tuple_distance requires rows of equal arity")
    return sum(0 if values_equal(a, b) else 1 for a, b in zip(left_values, right_values))


def _assignment(source: Relation, target: Relation) -> tuple[list[tuple[int, int]], list[int], list[int]]:
    """Solve the minimum-cost matching between source and target tuples.

    Returns ``(matched_pairs, deleted_source_indexes, inserted_target_indexes)``
    where matched pairs are index pairs into the relations' tuple lists.

    Identical rows are matched greedily at zero cost first (always part of an
    optimal solution for this cost structure), so the cubic Hungarian step only
    runs on the usually tiny symmetric difference — QFE's modified databases
    differ from the original in a handful of tuples.
    """
    matched, source_indexes, target_indexes = _match_identical_rows(source, target)

    arity = source.schema.arity
    source_rows = [source.tuples[i].values for i in source_indexes]
    target_rows = [target.tuples[j].values for j in target_indexes]
    n_source, n_target = len(source_rows), len(target_rows)
    if n_source == 0 and n_target == 0:
        return matched, [], []

    size = n_source + n_target
    # Padded square matrix: matching a source row to a "phantom" column means
    # deleting it (cost = arity); matching a phantom row to a target column
    # means inserting it (cost = arity); phantom-to-phantom costs nothing.
    cost = np.zeros((size, size), dtype=float)
    cost[:n_source, n_target:] = arity
    cost[n_source:, :n_target] = arity
    for i, source_row in enumerate(source_rows):
        for j, target_row in enumerate(target_rows):
            cost[i, j] = tuple_distance(source_row, target_row)
    row_indexes, column_indexes = linear_sum_assignment(cost)

    deleted: list[int] = []
    inserted: list[int] = []
    for i, j in zip(row_indexes, column_indexes):
        if i < n_source and j < n_target:
            # Matching at a cost >= arity is never cheaper than delete+insert,
            # and delete+insert is the more faithful description of the change.
            if cost[i, j] >= 2 * arity:
                deleted.append(source_indexes[i])
                inserted.append(target_indexes[j])
            else:
                matched.append((source_indexes[i], target_indexes[j]))
        elif i < n_source:
            deleted.append(source_indexes[i])
        elif j < n_target:
            inserted.append(target_indexes[j])
    return matched, deleted, inserted


def _match_identical_rows(
    source: Relation, target: Relation
) -> tuple[list[tuple[int, int]], list[int], list[int]]:
    """Greedily pair up identical rows; return the pairs and the leftover indexes."""
    target_buckets: dict[tuple, list[int]] = {}
    for j, row in enumerate(target.tuples):
        target_buckets.setdefault(Relation._normalize_row(row.values), []).append(j)

    matched: list[tuple[int, int]] = []
    leftover_source: list[int] = []
    consumed_targets: set[int] = set()
    for i, row in enumerate(source.tuples):
        bucket = target_buckets.get(Relation._normalize_row(row.values))
        if bucket:
            j = bucket.pop()
            matched.append((i, j))
            consumed_targets.add(j)
        else:
            leftover_source.append(i)
    leftover_target = [j for j in range(len(target.tuples)) if j not in consumed_targets]
    return matched, leftover_source, leftover_target


def min_edit_relation(source: Relation, target: Relation) -> int:
    """``minEdit(T, T')`` — the minimum edit cost between two relation instances."""
    return min_edit_script(source, target).cost


def min_edit_script(source: Relation, target: Relation) -> EditScript:
    """A minimum-cost edit script transforming *source* into *target*."""
    if source.schema.arity != target.schema.arity:
        raise ValueError("min_edit_script requires relations of equal arity")
    arity = source.schema.arity
    matched, deleted, inserted = _assignment(source, target)
    operations: list[EditOperation] = []
    attribute_names = source.schema.attribute_names
    source_tuples = source.tuples
    target_tuples = target.tuples
    for i, j in matched:
        source_row = source_tuples[i].values
        target_row = target_tuples[j].values
        for position, (old, new) in enumerate(zip(source_row, target_row)):
            if not values_equal(old, new):
                operations.append(
                    EditOperation(
                        kind=EditKind.MODIFY,
                        relation=source.schema.name,
                        attribute=attribute_names[position],
                        old_value=old,
                        new_value=new,
                        source_row=source_row,
                        target_row=target_row,
                        cost=1,
                    )
                )
    for i in deleted:
        operations.append(
            EditOperation(
                kind=EditKind.DELETE,
                relation=source.schema.name,
                source_row=source_tuples[i].values,
                cost=arity,
            )
        )
    for j in inserted:
        operations.append(
            EditOperation(
                kind=EditKind.INSERT,
                relation=source.schema.name,
                target_row=target_tuples[j].values,
                cost=arity,
            )
        )
    return EditScript(tuple(operations))


def modified_relation_names(source: Database, target: Database) -> tuple[str, ...]:
    """Names of relations whose instances differ between the two databases."""
    names = []
    for name in source.table_names:
        if not source.relation(name).bag_equal(target.relation(name)):
            names.append(name)
    return tuple(names)


def min_edit_database(source: Database, target: Database) -> int:
    """``minEdit(D, D')`` — sum of per-relation minimum edit costs over modified relations."""
    total = 0
    for name in modified_relation_names(source, target):
        total += min_edit_relation(source.relation(name), target.relation(name))
    return total
