"""Database instances: a schema plus one relation instance per table.

A :class:`Database` is the ``D`` in the paper's ``(D, R)`` database–result
pair. It supports deep copies (the Database Generator derives each modified
database ``D'`` from a copy of ``D``), per-relation access, and convenience
constructors from plain Python rows.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, ForeignKey, TableSchema

__all__ = ["Database"]


class Database:
    """A collection of named relation instances plus their schema."""

    def __init__(self, schema: DatabaseSchema, relations: Mapping[str, Relation] | None = None) -> None:
        self.schema = schema
        self.relations: dict[str, Relation] = {}
        provided = dict(relations or {})
        for table_name, table_schema in schema.tables.items():
            relation = provided.pop(table_name, None)
            if relation is None:
                relation = Relation(table_schema)
            elif relation.schema != table_schema:
                raise SchemaError(
                    f"relation provided for table {table_name!r} does not match the schema"
                )
            self.relations[table_name] = relation
        if provided:
            raise SchemaError(f"relations {sorted(provided)} are not part of the schema")

    # ----------------------------------------------------------- construction
    @classmethod
    def from_tables(
        cls,
        tables: Mapping[str, tuple[Sequence[str], Iterable[Sequence[Any]]]],
        foreign_keys: Iterable[ForeignKey] = (),
        *,
        primary_keys: Mapping[str, Sequence[str]] | None = None,
    ) -> "Database":
        """Build a database from ``{table: (columns, rows)}`` with inferred types."""
        primary_keys = primary_keys or {}
        relations: dict[str, Relation] = {}
        schemas: list[TableSchema] = []
        for name, (columns, rows) in tables.items():
            relation = Relation.from_rows(
                name, columns, rows, primary_key=primary_keys.get(name)
            )
            relations[name] = relation
            schemas.append(relation.schema)
        schema = DatabaseSchema(schemas, foreign_keys)
        return cls(schema, relations)

    def copy(self) -> "Database":
        """A deep copy of the database (schema is shared, data is copied)."""
        return Database(
            self.schema,
            {name: relation.copy() for name, relation in self.relations.items()},
        )

    # ----------------------------------------------------------------- access
    def relation(self, name: str) -> Relation:
        """The relation instance for table *name*."""
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"database has no relation {name!r}") from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self):
        return iter(self.relations.values())

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all tables."""
        return tuple(self.relations)

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(relation) for relation in self.relations.values())

    def pretty(self, *, max_rows: int | None = 20) -> str:
        """A text rendering of every relation (for examples)."""
        return "\n\n".join(
            relation.pretty(max_rows=max_rows) for relation in self.relations.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(f"{name}:{len(rel)}" for name, rel in self.relations.items())
        return f"Database({sizes})"
