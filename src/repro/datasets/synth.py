"""Deterministic synthetic-data helpers shared by the dataset builders.

The paper evaluates QFE on two real datasets (a SQLShare biology database and
the Lahman baseball archive) and one census extract; none of them ships with
the paper, so each dataset module builds a *seeded synthetic equivalent* with
the same schema shape, row counts and join selectivity. All randomness flows
through :class:`random.Random` instances seeded per dataset, so every build is
bit-for-bit reproducible and tests can assert exact cardinalities.
"""

from __future__ import annotations

import random
import string
from typing import Sequence

__all__ = [
    "rng_for",
    "identifier",
    "choice_weighted",
    "clipped_normal",
    "log_fold_change",
    "p_value",
    "scaled_count",
]

_BASE_SEED = 0x5F3E_2015  # stable across runs; 2015 is the paper's year


def rng_for(name: str, seed: int | None = None) -> random.Random:
    """A deterministic RNG namespaced by *name* (and optionally a caller seed)."""
    base = _BASE_SEED if seed is None else seed
    return random.Random(f"{base}:{name}")


def identifier(rng: random.Random, prefix: str, width: int = 6) -> str:
    """A synthetic identifier such as ``gene_ab12cd`` (lower-case alphanumerics)."""
    alphabet = string.ascii_lowercase + string.digits
    suffix = "".join(rng.choice(alphabet) for _ in range(width))
    return f"{prefix}_{suffix}"


def choice_weighted(rng: random.Random, values: Sequence, weights: Sequence[float]):
    """One weighted choice (wrapper keeping call sites tidy)."""
    return rng.choices(list(values), weights=list(weights), k=1)[0]


def clipped_normal(
    rng: random.Random, mean: float, stddev: float, minimum: float, maximum: float
) -> float:
    """A normal sample clipped into ``[minimum, maximum]``."""
    value = rng.gauss(mean, stddev)
    return max(minimum, min(maximum, value))


def log_fold_change(rng: random.Random, spread: float = 2.0) -> float:
    """A log-fold-change style value roughly in ``[-3·spread/2, 3·spread/2]``."""
    return round(clipped_normal(rng, 0.0, spread, -3.0 * spread, 3.0 * spread), 4)


def p_value(rng: random.Random, significant_fraction: float = 0.25) -> float:
    """A p-value, a ``significant_fraction`` of which fall below 0.05."""
    if rng.random() < significant_fraction:
        return round(rng.uniform(0.0001, 0.049), 4)
    return round(rng.uniform(0.05, 1.0), 4)


def scaled_count(full_count: int, scale: float, *, minimum: int = 1) -> int:
    """Scale a full-size row count, never dropping below *minimum*."""
    return max(minimum, int(round(full_count * scale)))
