"""Synthetic equivalent of the 1994 Census "Adult" extract used in the user study.

Section 7.7: the preliminary user study ran over a single ``Adult`` relation
of 5227 tuples extracted from the 1994 Census database, chosen because its
domain is easy for participants to understand. This module generates a seeded
synthetic table with the standard Adult columns and provides the three
user-study target queries (the paper does not print them, so we use three
simple SPJ selections of increasing width over well-understood attributes,
with small result sizes so the feedback rounds stay readable).
"""

from __future__ import annotations

from typing import Any

from repro.datasets.synth import rng_for, scaled_count
from repro.relational.database import Database
from repro.relational.evaluator import evaluate
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = ["ADULT_TABLE", "FULL_ADULT_ROWS", "build_database", "user_study_queries"]

ADULT_TABLE = "Adult"
FULL_ADULT_ROWS = 5227

ADULT_COLUMNS = [
    "person_id",
    "age",
    "workclass",
    "education",
    "education_num",
    "marital_status",
    "occupation",
    "relationship",
    "race",
    "sex",
    "capital_gain",
    "capital_loss",
    "hours_per_week",
    "native_country",
    "income",
]

_WORKCLASSES = ["Private", "Self-emp", "Federal-gov", "State-gov", "Local-gov", "Without-pay"]
_EDUCATION = ["HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate", "11th", "Assoc"]
_MARITAL = ["Married", "Never-married", "Divorced", "Widowed", "Separated"]
_OCCUPATIONS = [
    "Tech-support", "Craft-repair", "Sales", "Exec-managerial", "Prof-specialty",
    "Handlers-cleaners", "Machine-op-inspct", "Adm-clerical", "Farming-fishing",
    "Transport-moving",
]
_RELATIONSHIPS = ["Husband", "Wife", "Own-child", "Not-in-family", "Unmarried", "Other-relative"]
_RACES = ["White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"]
_COUNTRIES = ["United-States", "Mexico", "Philippines", "Germany", "Canada", "India", "England"]


def _row(rng, person_id: int) -> list[Any]:
    education = rng.choice(_EDUCATION)
    education_num = {"11th": 7, "HS-grad": 9, "Some-college": 10, "Assoc": 12,
                     "Bachelors": 13, "Masters": 14, "Doctorate": 16}[education]
    return [
        person_id,
        rng.randint(17, 90),
        rng.choice(_WORKCLASSES),
        education,
        education_num,
        rng.choice(_MARITAL),
        rng.choice(_OCCUPATIONS),
        rng.choice(_RELATIONSHIPS),
        rng.choice(_RACES),
        rng.choice(["Male", "Female"]),
        rng.choice([0, 0, 0, 0, rng.randint(1000, 99999)]),
        rng.choice([0, 0, 0, 0, rng.randint(100, 4000)]),
        rng.randint(1, 99),
        rng.choice(_COUNTRIES),
        ">50K" if rng.random() < 0.24 else "<=50K",
    ]


def _planted_rows(rng, start_id: int) -> list[list[Any]]:
    """Hand-planted rows guaranteeing small, non-empty user-study results."""
    rows: list[list[Any]] = []
    person_id = start_id
    # Target 1: Doctorate holders working > 60 hours (4 rows).
    for _ in range(4):
        row = _row(rng, person_id)
        row[3], row[4], row[12] = "Doctorate", 16, rng.randint(61, 80)
        rows.append(row)
        person_id += 1
    # Target 2: young (age < 25) federal-government workers (3 rows).
    for _ in range(3):
        row = _row(rng, person_id)
        row[1], row[2] = rng.randint(18, 24), "Federal-gov"
        rows.append(row)
        person_id += 1
    # Target 3: high-capital-gain (> 50000) sales people (3 rows).
    for _ in range(3):
        row = _row(rng, person_id)
        row[6], row[10] = "Sales", rng.randint(50001, 99999)
        rows.append(row)
        person_id += 1
    return rows


def build_database(scale: float = 1.0, *, seed: int | None = None) -> Database:
    """Build the synthetic Adult table (5227 rows at full scale)."""
    rng = rng_for("adult", seed)
    total = max(scaled_count(FULL_ADULT_ROWS, scale), 60)
    planted = _planted_rows(rng, start_id=1)
    rows = list(planted)
    person_id = len(planted) + 1
    while len(rows) < total:
        row = _row(rng, person_id)
        # Keep the planted result sets exact: background rows must not satisfy
        # any of the three target predicates.
        if row[3] == "Doctorate" and row[12] > 60:
            row[12] = rng.randint(20, 60)
        if row[1] < 25 and row[2] == "Federal-gov":
            row[2] = "Private"
        if row[6] == "Sales" and row[10] > 50000:
            row[10] = rng.randint(0, 50000)
        rows.append(row)
        person_id += 1
    return Database.from_tables(
        {ADULT_TABLE: (ADULT_COLUMNS, rows)},
        primary_keys={ADULT_TABLE: ["person_id"]},
    )


def user_study_queries() -> list[SPJQuery]:
    """The three user-study target queries over the Adult table."""
    def q(terms: list[Term], projection: list[str]) -> SPJQuery:
        return SPJQuery([ADULT_TABLE], projection, DNFPredicate.from_terms(terms))

    return [
        q(
            [
                Term("Adult.education", ComparisonOp.EQ, "Doctorate"),
                Term("Adult.hours_per_week", ComparisonOp.GT, 60),
            ],
            ["Adult.occupation", "Adult.hours_per_week"],
        ),
        q(
            [
                Term("Adult.age", ComparisonOp.LT, 25),
                Term("Adult.workclass", ComparisonOp.EQ, "Federal-gov"),
            ],
            ["Adult.age", "Adult.occupation"],
        ),
        q(
            [
                Term("Adult.occupation", ComparisonOp.EQ, "Sales"),
                Term("Adult.capital_gain", ComparisonOp.GT, 50000),
            ],
            ["Adult.education", "Adult.capital_gain"],
        ),
    ]


def example_pair(query_index: int = 0, *, scale: float = 1.0) -> tuple[Database, Relation, SPJQuery]:
    """Build the Adult database and the ``(D, R)`` pair of one user-study target."""
    database = build_database(scale)
    target = user_study_queries()[query_index]
    result = evaluate(target, database, name="R")
    return database, result, target
