"""The Employee example of the paper's Example 1.1.

A four-row single-table database, the result of the target query
``π_name(σ_salary>4000(Employee))`` and the paper's three candidate queries
``gender = 'M'``, ``salary > 4000`` and ``dept = 'IT'``. Used by the
quickstart example and by the tests that replay Example 1.1 end to end.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = ["build_database", "result_for", "candidate_trio", "example_pair", "TARGET_QUERY"]

_ROWS = [
    [1, "Alice", "F", "Sales", 3700],
    [2, "Bob", "M", "IT", 4200],
    [3, "Celina", "F", "Service", 3000],
    [4, "Darren", "M", "IT", 5000],
]


def build_database() -> Database:
    """The Employee database of Example 1.1."""
    return Database.from_tables(
        {"Employee": (["Eid", "name", "gender", "dept", "salary"], _ROWS)},
        primary_keys={"Employee": ["Eid"]},
    )


def _selection_query(term: Term) -> SPJQuery:
    return SPJQuery(["Employee"], ["Employee.name"], DNFPredicate.from_terms([term]))


#: The paper's Q2 of Example 1.1 (``salary > 4000``) — used as the default target.
TARGET_QUERY = _selection_query(Term("Employee.salary", ComparisonOp.GT, 4000))


def candidate_trio() -> list[SPJQuery]:
    """The three candidate queries {Q1, Q2, Q3} of Example 1.1."""
    return [
        _selection_query(Term("Employee.gender", ComparisonOp.EQ, "M")),
        TARGET_QUERY,
        _selection_query(Term("Employee.dept", ComparisonOp.EQ, "IT")),
    ]


def result_for(database: Database | None = None) -> Relation:
    """The example result ``R`` — Bob and Darren."""
    del database  # the result is fixed for the fixed example database
    return Relation.from_rows("R", ["Employee.name"], [["Bob"], ["Darren"]])


def example_pair() -> tuple[Database, Relation, SPJQuery]:
    """The ``(D, R)`` pair plus the intended target query of Example 1.1."""
    database = build_database()
    return database, result_for(database), TARGET_QUERY
