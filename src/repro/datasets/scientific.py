"""Synthetic equivalent of the paper's SQLShare scientific (biology) database.

The paper's first dataset (Section 7.1) consists of two tables uploaded to
SQLShare by a biologist:

* ``PmTE_ALL_DE`` — 3926 rows × 16 attributes of differential-expression
  statistics (log-fold changes and p-values for four nutrient conditions:
  Fe, P, Si and Urea);
* ``table_Psemu1FL_RT_spgp_gp_ok`` — 424 rows × 3 attributes;
* their foreign-key join has 417 tuples.

The real data is not distributed with the paper, so this module generates a
seeded synthetic database with the same schema shape, row counts and join
selectivity, and *plants* rows so that the paper's two real user queries have
exactly the paper's result cardinalities: ``Q1`` selects 1 joined row and
``Q2`` selects 6 (Section 7.1). A ``scale`` parameter shrinks the background
rows for fast tests while keeping the planted rows (and therefore the query
results) identical.
"""

from __future__ import annotations

from typing import Any

from repro.datasets.synth import log_fold_change, p_value, rng_for, scaled_count
from repro.relational.database import Database
from repro.relational.schema import ForeignKey

__all__ = [
    "MAIN_TABLE",
    "SIDE_TABLE",
    "FULL_MAIN_ROWS",
    "FULL_SIDE_ROWS",
    "FULL_JOIN_ROWS",
    "build_database",
]

MAIN_TABLE = "PmTE_ALL_DE"
SIDE_TABLE = "table_Psemu1FL_RT_spgp_gp_ok"

FULL_MAIN_ROWS = 3926
FULL_SIDE_ROWS = 424
FULL_JOIN_ROWS = 417  # 7 side-table rows carry NULL gene references

MAIN_COLUMNS = [
    "gene_id",
    "logFC_Fe",
    "logFC_P",
    "logFC_Si",
    "logFC_Urea",
    "PValue_Fe",
    "PValue_P",
    "PValue_Si",
    "PValue_Urea",
    "AveExpr",
    "t_stat",
    "B_stat",
    "adj_PValue",
    "cluster",
    "annotation",
    "contig",
]

SIDE_COLUMNS = ["probe_id", "gene_id", "rt_value"]

_ANNOTATIONS = ["transporter", "kinase", "ribosomal", "unknown", "photosynthesis", "stress"]


def _q1_planted_row(rng, index: int) -> list[Any]:
    """A row satisfying Q1: |logFC_Fe|<0.5, the other logFCs < -1, one p < 0.05."""
    return _assemble_main_row(
        rng,
        gene_id=f"gene_q1_{index:03d}",
        logfc_fe=round(rng.uniform(-0.4, 0.4), 4),
        logfc_p=round(rng.uniform(-2.5, -1.2), 4),
        logfc_si=round(rng.uniform(-2.5, -1.2), 4),
        logfc_urea=round(rng.uniform(-2.5, -1.2), 4),
        pvalue_fe=0.01,
    )


def _q2_planted_row(rng, index: int) -> list[Any]:
    """A row satisfying Q2: logFC_Fe<1, the other logFCs > 1, one p < 0.05."""
    return _assemble_main_row(
        rng,
        gene_id=f"gene_q2_{index:03d}",
        logfc_fe=round(rng.uniform(-0.8, 0.8), 4),
        logfc_p=round(rng.uniform(1.2, 2.8), 4),
        logfc_si=round(rng.uniform(1.2, 2.8), 4),
        logfc_urea=round(rng.uniform(1.2, 2.8), 4),
        pvalue_fe=0.02,
    )


def _assemble_main_row(
    rng,
    *,
    gene_id: str,
    logfc_fe: float,
    logfc_p: float,
    logfc_si: float,
    logfc_urea: float,
    pvalue_fe: float,
) -> list[Any]:
    return [
        gene_id,
        logfc_fe,
        logfc_p,
        logfc_si,
        logfc_urea,
        pvalue_fe,
        p_value(rng),
        p_value(rng),
        p_value(rng),
        round(rng.uniform(2.0, 14.0), 3),
        round(rng.uniform(-8.0, 8.0), 3),
        round(rng.uniform(-5.0, 20.0), 3),
        p_value(rng, significant_fraction=0.4),
        rng.randint(1, 12),
        rng.choice(_ANNOTATIONS),
        f"contig_{rng.randint(1, 400):04d}",
    ]


def _background_main_row(rng, index: int) -> list[Any]:
    """A background row guaranteed to fail both Q1 and Q2.

    Q1 requires ``logFC_P < -1`` and Q2 requires ``logFC_P > 1``; pinning the
    background ``logFC_P`` into ``[-0.9, 0.9]`` falsifies both regardless of
    the remaining values, keeping the planted result cardinalities exact.
    """
    return _assemble_main_row(
        rng,
        gene_id=f"gene_bg_{index:05d}",
        logfc_fe=log_fold_change(rng, spread=1.2),
        logfc_p=round(rng.uniform(-0.9, 0.9), 4),
        logfc_si=log_fold_change(rng, spread=1.5),
        logfc_urea=log_fold_change(rng, spread=1.5),
        pvalue_fe=p_value(rng),
    )


def build_database(scale: float = 1.0, *, seed: int | None = None) -> Database:
    """Build the synthetic scientific database.

    ``scale`` multiplies the background row counts (the 7 planted rows that
    realize Q1's and Q2's results are always present); ``scale=1.0`` matches
    the paper's row counts (3926 / 424 rows, 417-row join).
    """
    rng = rng_for("scientific", seed)
    planted = [_q1_planted_row(rng, 0)] + [_q2_planted_row(rng, i) for i in range(6)]

    main_total = max(scaled_count(FULL_MAIN_ROWS, scale), len(planted) + 10)
    side_total = max(scaled_count(FULL_SIDE_ROWS, scale), len(planted) + 12)
    null_side_rows = min(7, max(1, side_total - len(planted) - 1))

    main_rows = list(planted)
    for index in range(main_total - len(planted)):
        main_rows.append(_background_main_row(rng, index))

    # Side table: every planted gene is joined (so Q1/Q2 results survive the
    # join), most background side rows reference background genes, and a few
    # carry NULL gene references so the join is smaller than the side table.
    side_rows: list[list[Any]] = []
    probe_counter = 0

    def _next_probe() -> str:
        nonlocal probe_counter
        probe_counter += 1
        return f"probe_{probe_counter:05d}"

    for row in planted:
        side_rows.append([_next_probe(), row[0], round(rng.uniform(0.5, 30.0), 3)])
    joined_background = side_total - len(planted) - null_side_rows
    background_genes = [row[0] for row in main_rows[len(planted):]]
    for index in range(max(joined_background, 0)):
        gene = background_genes[index % len(background_genes)] if background_genes else None
        side_rows.append([_next_probe(), gene, round(rng.uniform(0.5, 30.0), 3)])
    for _ in range(null_side_rows):
        side_rows.append([_next_probe(), None, round(rng.uniform(0.5, 30.0), 3)])

    return Database.from_tables(
        {
            MAIN_TABLE: (MAIN_COLUMNS, main_rows),
            SIDE_TABLE: (SIDE_COLUMNS, side_rows),
        },
        foreign_keys=[ForeignKey(SIDE_TABLE, ("gene_id",), MAIN_TABLE, ("gene_id",))],
        primary_keys={MAIN_TABLE: ["gene_id"], SIDE_TABLE: ["probe_id"]},
    )
