"""Dataset builders: synthetic equivalents of the paper's evaluation databases."""

from repro.datasets import adult, baseball, employee, scientific, synth

__all__ = ["employee", "scientific", "baseball", "adult", "synth"]
