"""Synthetic equivalent of the paper's baseball database (Lahman archive slice).

Section 7.1: the paper uses three tables of the Major League Baseball
statistics archive — ``Manager`` (200 rows × 11 columns), ``Team`` (252 × 29)
and ``Batting`` (6977 × 15) — whose foreign-key join has 8810 tuples, and
four synthetic queries Q3–Q6 of varying complexity with result cardinalities
5, 14, 4 and 4.

The archive is not redistributed here, so this module builds a seeded
synthetic database with the same schema shape, row counts, join fanout
(some team-seasons have two manager stints, which is where the join grows
beyond the Batting cardinality) and *planted* rows realizing exactly the
paper's result cardinalities for Q3–Q6. Column names follow the Lahman
conventions except that ``2B``/``3B`` are spelled ``doubles``/``triples`` so
they remain valid identifiers everywhere.
"""

from __future__ import annotations

from typing import Any

from repro.datasets.synth import rng_for, scaled_count
from repro.relational.database import Database
from repro.relational.schema import ForeignKey

__all__ = [
    "MANAGER_TABLE",
    "TEAM_TABLE",
    "BATTING_TABLE",
    "FULL_TEAM_ROWS",
    "FULL_MANAGER_ROWS",
    "FULL_BATTING_ROWS",
    "build_database",
    "Q4_PLAYERS",
    "Q5_PLAYER",
    "Q6_PLAYER",
]

MANAGER_TABLE = "Manager"
TEAM_TABLE = "Team"
BATTING_TABLE = "Batting"

FULL_TEAM_ROWS = 252
FULL_MANAGER_ROWS = 200
FULL_BATTING_ROWS = 6977

TEAM_COLUMNS = [
    "team_season_id", "teamID", "year", "Rank", "G", "W", "L", "R", "AB", "H",
    "doubles", "triples", "HR", "BB", "SO", "SB", "RA", "ER", "ERA", "CG",
    "SHO", "SV", "IP", "HA", "HRA", "BBA", "SOA", "E", "park",
]
MANAGER_COLUMNS = [
    "manager_stint_id", "managerID", "team_season_id", "year", "inseason",
    "G", "W", "L", "Rank", "plyrMgr", "notes",
]
BATTING_COLUMNS = [
    "batting_id", "playerID", "team_season_id", "year", "stint", "G", "AB",
    "R", "H", "doubles", "triples", "HR", "RBI", "SB", "BB",
]

TEAM_IDS = ["CIN", "NYA", "BOS", "LAN", "SFN", "CHN", "DET", "SLN", "PIT", "PHI", "ATL", "HOU"]
Q4_PLAYERS = ("sotoma01", "brownto05", "pariske01", "welshch01")
Q5_PLAYER = "rosepe01"
Q6_PLAYER = "esaskni01"
_PLANTED_PLAYERS = set(Q4_PLAYERS) | {Q5_PLAYER, Q6_PLAYER}


def _team_row(rng, team_season_id: int, team_id: str, year: int, *, ip: float | None = None,
              bba: int | None = None) -> list[Any]:
    wins = rng.randint(55, 105)
    return [
        team_season_id, team_id, year, rng.randint(1, 7), 162, wins, 162 - wins,
        rng.randint(550, 900), rng.randint(5200, 5800), rng.randint(1300, 1600),
        rng.randint(200, 320), rng.randint(20, 60), rng.randint(80, 220),
        rng.randint(400, 650), rng.randint(700, 1100), rng.randint(40, 180),
        rng.randint(550, 900), rng.randint(500, 800), round(rng.uniform(3.0, 5.0), 2),
        rng.randint(5, 30), rng.randint(4, 18), rng.randint(20, 55),
        round(ip if ip is not None else rng.uniform(4200.0, 4500.0), 1),
        rng.randint(1250, 1550), rng.randint(90, 200),
        bba if bba is not None else rng.randint(380, 620),
        rng.randint(650, 1100), rng.randint(80, 160), f"Park_{team_id}",
    ]


def _manager_row(rng, stint_id: int, manager_id: str, team_season_id: int, year: int,
                 inseason: int) -> list[Any]:
    games = rng.randint(40, 162)
    wins = rng.randint(10, games)
    return [
        stint_id, manager_id, team_season_id, year, inseason, games, wins,
        games - wins, rng.randint(1, 7), rng.choice(["Y", "N"]), f"note_{stint_id}",
    ]


def _batting_row(rng, batting_id: int, player_id: str, team_season_id: int, year: int, *,
                 hr: int | None = None, doubles: int | None = None) -> list[Any]:
    games = rng.randint(20, 162)
    at_bats = rng.randint(50, 650)
    return [
        batting_id, player_id, team_season_id, year, 1, games, at_bats,
        rng.randint(5, 120), rng.randint(10, 220),
        doubles if doubles is not None else rng.randint(0, 45),
        rng.randint(0, 12),
        hr if hr is not None else rng.randint(0, 45),
        rng.randint(5, 140), rng.randint(0, 70), rng.randint(5, 110),
    ]


def build_database(scale: float = 1.0, *, seed: int | None = None) -> Database:
    """Build the synthetic baseball database.

    The planted Cincinnati (``CIN``) seasons 1983–1987, their managers, and
    the batting rows of the players referenced by Q4–Q6 are always present so
    the paper's query cardinalities (Q3: 5, Q4: 14, Q5: 4, Q6: 4) hold at any
    ``scale``; the remaining team-seasons, manager stints and batting rows are
    background data scaled by ``scale``.
    """
    rng = rng_for("baseball", seed)
    team_rows: list[list[Any]] = []
    manager_rows: list[list[Any]] = []
    batting_rows: list[list[Any]] = []
    next_team = 1
    next_stint = 1
    next_batting = 1

    # ------------------------------------------------------------- planted CIN
    cin_seasons: dict[int, int] = {}
    # Q6 predicate (IP > 4380) OR (IP <= 4380 AND BBA <= 485): 1985 is planted
    # to *fail* it, every other planted season satisfies it.
    planted_team_stats = {
        1983: {"ip": 4400.0, "bba": 500},   # IP > 4380 -> satisfies Q6 disjunct 1
        1984: {"ip": 4300.0, "bba": 450},   # IP <= 4380, BBA <= 485 -> satisfies
        1985: {"ip": 4300.0, "bba": 560},   # fails both disjuncts
        1986: {"ip": 4390.0, "bba": 470},   # satisfies
        1987: {"ip": 4200.0, "bba": 420},   # satisfies
    }
    cin_managers = {
        1983: "russnj01", 1984: "rosepe01", 1985: "rosepe01", 1986: "rosepe01", 1987: "rosepe01",
    }
    for year in range(1983, 1988):
        stats = planted_team_stats[year]
        team_rows.append(_team_row(rng, next_team, "CIN", year, ip=stats["ip"], bba=stats["bba"]))
        cin_seasons[year] = next_team
        manager_rows.append(_manager_row(rng, next_stint, cin_managers[year], next_team, year, 1))
        next_team += 1
        next_stint += 1

    # Q5: rosepe01 batting rows with HR > 1 and doubles <= 3 in four CIN seasons,
    # plus one row failing the predicate.
    for year in (1984, 1985, 1986, 1987):
        batting_rows.append(
            _batting_row(rng, next_batting, Q5_PLAYER, cin_seasons[year], year, hr=rng.randint(2, 6),
                         doubles=rng.randint(0, 3))
        )
        next_batting += 1
    batting_rows.append(
        _batting_row(rng, next_batting, Q5_PLAYER, cin_seasons[1983], 1983, hr=0, doubles=12)
    )
    next_batting += 1

    # Q4: the four named players appear on CIN seasons (one manager each), with
    # 5 + 4 + 3 + 2 = 14 joined rows in total.
    q4_allocation = {Q4_PLAYERS[0]: 5, Q4_PLAYERS[1]: 4, Q4_PLAYERS[2]: 3, Q4_PLAYERS[3]: 2}
    for player, row_count in q4_allocation.items():
        for offset in range(row_count):
            year = 1983 + (offset % 5)
            batting_rows.append(
                _batting_row(rng, next_batting, player, cin_seasons[year], year)
            )
            next_batting += 1

    # Q6: esaskni01 has one batting row in each planted season; the 1985 season
    # fails the IP/BBA predicate, so exactly 4 joined rows qualify.
    for year in range(1983, 1988):
        batting_rows.append(_batting_row(rng, next_batting, Q6_PLAYER, cin_seasons[year], year))
        next_batting += 1

    # ------------------------------------------------------------- background
    team_total = max(scaled_count(FULL_TEAM_ROWS, scale), len(team_rows) + 10)
    manager_total = max(scaled_count(FULL_MANAGER_ROWS, scale), len(manager_rows) + 8)
    batting_total = max(scaled_count(FULL_BATTING_ROWS, scale), len(batting_rows) + 40)

    background_team_ids: list[tuple[int, int]] = []  # (team_season_id, year)
    while next_team <= team_total:
        team_id = rng.choice(TEAM_IDS[1:])
        year = rng.randint(1970, 1995)
        team_rows.append(_team_row(rng, next_team, team_id, year))
        background_team_ids.append((next_team, year))
        next_team += 1

    # Assign manager stints to background seasons: earlier seasons get one
    # stint, roughly a quarter of them get a second ("mid-season change"),
    # and the remainder get none — reproducing a 3-table join larger than
    # Batting but smaller than Batting × 2.
    managed_seasons: list[tuple[int, int]] = []
    index = 0
    while next_stint <= manager_total and index < len(background_team_ids):
        team_season_id, year = background_team_ids[index]
        manager_id = f"mgr{index:03d}a01"
        manager_rows.append(_manager_row(rng, next_stint, manager_id, team_season_id, year, 1))
        managed_seasons.append((team_season_id, year))
        next_stint += 1
        if next_stint <= manager_total and rng.random() < 0.26:
            manager_rows.append(
                _manager_row(rng, next_stint, f"mgr{index:03d}b01", team_season_id, year, 2)
            )
            next_stint += 1
        index += 1

    batting_seasons = managed_seasons + [(cin_seasons[y], y) for y in cin_seasons]
    while next_batting <= batting_total:
        team_season_id, year = rng.choice(batting_seasons)
        player = f"plyr{rng.randint(0, 4000):04d}a01"
        batting_rows.append(_batting_row(rng, next_batting, player, team_season_id, year))
        next_batting += 1

    return Database.from_tables(
        {
            TEAM_TABLE: (TEAM_COLUMNS, team_rows),
            MANAGER_TABLE: (MANAGER_COLUMNS, manager_rows),
            BATTING_TABLE: (BATTING_COLUMNS, batting_rows),
        },
        foreign_keys=[
            ForeignKey(MANAGER_TABLE, ("team_season_id",), TEAM_TABLE, ("team_season_id",)),
            ForeignKey(BATTING_TABLE, ("team_season_id",), TEAM_TABLE, ("team_season_id",)),
        ],
        primary_keys={
            TEAM_TABLE: ["team_season_id"],
            MANAGER_TABLE: ["manager_stint_id"],
            BATTING_TABLE: ["batting_id"],
        },
    )
