"""Interactive command-line front end: run a QFE session on your own data.

Installed as the ``qfe-session`` console script::

    qfe-session --data ./my_csvs --result ./expected_rows.csv
    qfe-session --dataset employee            # demo on the paper's Example 1.1

``--data`` points at a directory of CSV files (one relation per file);
``--result`` is a CSV file whose header names the projected columns (either
``table.column`` or plain column names that exist in exactly one table) and
whose rows are the expected query output. The tool then walks through QFE's
feedback rounds on the terminal: each round prints the database changes and
the candidate results as diffs, and asks which result is correct (or ``0`` for
"none of these").

For scripted use (tests, demos) ``--answers 2,1,1`` supplies the choices up
front, and ``--target-sql "SELECT ..."`` lets an oracle answer automatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.core import (
    NONE_OF_THE_ABOVE,
    CallbackSelector,
    OracleSelector,
    QFEConfig,
    QFESession,
    ScriptedSelector,
)
from repro.core.config import BACKEND_CHOICES, backend_name, nonnegative_int
from repro.datasets import adult, baseball, employee, scientific
from repro.exceptions import ReproError
from repro.obs.trace import start_tracing, stop_tracing
from repro.qbo import QBOConfig
from repro.relational.csv_io import database_from_csv_directory, relation_from_csv_file
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.sql.parser import parse_query
from repro.sql.render import render_query

__all__ = ["main", "build_parser"]

_BUILTIN_DATASETS: dict[str, Callable[[float], Database]] = {
    "employee": lambda scale: employee.build_database(),
    "scientific": scientific.build_database,
    "baseball": baseball.build_database,
    "adult": adult.build_database,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the interactive session CLI."""
    parser = argparse.ArgumentParser(
        prog="qfe-session",
        description="Construct an SQL query from an example database/result pair (QFE, VLDB 2015).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--data", type=str, help="directory of CSV files, one relation per file")
    source.add_argument(
        "--dataset", choices=sorted(_BUILTIN_DATASETS), help="use a built-in demo dataset"
    )
    parser.add_argument("--result", type=str, help="CSV file with the expected query result")
    parser.add_argument(
        "--target-sql", type=str, default=None,
        help="the intended query; when given, an oracle answers the feedback automatically "
             "(and the result CSV becomes optional)",
    )
    parser.add_argument(
        "--answers", type=str, default=None,
        help="comma-separated 1-based option choices to replay instead of prompting (0 = none)",
    )
    parser.add_argument("--scale", type=float, default=0.1, help="scale for built-in datasets")
    parser.add_argument("--max-candidates", type=int, default=40, help="candidate-set size cap")
    parser.add_argument("--delta", type=float, default=1.0, help="Algorithm 3 time threshold (s)")
    parser.add_argument("--beta", type=float, default=1.0, help="relation-count scale factor β")
    parser.add_argument(
        "--workers", type=nonnegative_int, default=0,
        help="worker processes for the round planner's candidate search "
             "(0/1 = serial; results are identical at any worker count)",
    )
    parser.add_argument(
        "--backend", type=backend_name, default="auto", metavar="NAME",
        help="execution backend for the candidate search: "
             f"{', '.join(BACKEND_CHOICES)} (auto derives it from --workers; "
             "sql compiles each round into SQLite passes; transcripts are "
             "identical for every backend)",
    )
    parser.add_argument(
        "--transcript-out", type=str, default=None, metavar="PATH",
        help="write the machine-readable session transcript (rounds, deltas, "
             "choices, timings) as JSON to this file",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="write round-lifecycle spans as JSON lines to this file "
             "(inspect with `qfe-trace summary PATH`; tracing never changes "
             "the session's transcript)",
    )
    return parser


def _load_database(args: argparse.Namespace) -> Database:
    if args.dataset:
        return _BUILTIN_DATASETS[args.dataset](args.scale)
    directory = Path(args.data)
    if not directory.is_dir():
        raise ReproError(f"--data directory {directory} does not exist")
    return database_from_csv_directory(directory)


def _qualify_result_columns(result: Relation, database: Database) -> Relation:
    """Map plain result column names onto qualified ``table.column`` names."""
    qualified = []
    for name in result.schema.attribute_names:
        if "." in name:
            database.schema.resolve_attribute(name)
            qualified.append(name)
        else:
            table, column = database.schema.resolve_attribute(name)
            qualified.append(f"{table}.{column}")
    return Relation.from_rows(result.schema.name, qualified, [list(r) for r in result.rows()])


def _load_result(args: argparse.Namespace, database: Database) -> Relation:
    if args.result:
        raw = relation_from_csv_file(args.result, name="R")
        return _qualify_result_columns(raw, database)
    if args.target_sql:
        from repro.relational.evaluator import evaluate

        target = parse_query(args.target_sql, database.schema)
        return evaluate(target, database, name="R")
    raise ReproError("either --result or --target-sql must be provided")


def _interactive_selector(output) -> CallbackSelector:
    def ask(round_, partition) -> int:
        print(round_.pretty(), file=output)
        print(
            f"\nWhich result is the output of YOUR intended query on the modified database? "
            f"[1-{round_.option_count}, 0 = none of these] ",
            file=output,
        )
        while True:
            line = input("> ").strip()
            if line.isdigit() and 0 <= int(line) <= round_.option_count:
                choice = int(line)
                return NONE_OF_THE_ABOVE if choice == 0 else choice - 1
            print(f"please enter a number between 0 and {round_.option_count}", file=output)

    return CallbackSelector(ask)


def _write_transcript(session, path: str, output) -> None:
    """Emit the session's machine-readable transcript JSON (checkpoint serializers)."""
    import json

    from repro.service.checkpoint import session_transcript

    transcript = session_transcript(session, include_timings=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(transcript, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"Transcript written to {path}", file=output)


def main(argv: Sequence[str] | None = None, *, output=None) -> int:
    """CLI entry point; returns a process exit code."""
    output = output or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        database = _load_database(args)
        result = _load_result(args, database)
    except ReproError as error:
        print(f"error: {error}", file=output)
        return 2

    print(f"Loaded database with tables {list(database.table_names)} "
          f"({database.total_tuples()} tuples); the example result has {len(result)} rows.",
          file=output)

    if args.answers:
        choices = [int(part) - 1 if int(part) > 0 else NONE_OF_THE_ABOVE
                   for part in args.answers.split(",")]
        selector = ScriptedSelector(choices)
    elif args.target_sql:
        selector = OracleSelector(parse_query(args.target_sql, database.schema))
    else:
        selector = _interactive_selector(output)

    session = QFESession(
        database,
        result,
        config=QFEConfig(
            beta=args.beta,
            delta_seconds=args.delta,
            workers=args.workers,
            backend=args.backend,
        ),
        qbo_config=QBOConfig(threshold_variants=2, max_candidates=args.max_candidates),
    )
    if args.trace_out:
        start_tracing(args.trace_out)
    try:
        outcome = session.run(selector)
    except ReproError as error:
        print(f"error: {error}", file=output)
        return 1
    finally:
        if args.trace_out:
            stop_tracing()
            print(f"Trace written to {args.trace_out}", file=output)

    if args.transcript_out:
        _write_transcript(session, args.transcript_out, output)

    print(f"\nCandidate queries considered: {outcome.initial_candidate_count}; "
          f"feedback rounds: {outcome.iteration_count}.", file=output)
    if outcome.converged and outcome.identified_query is not None:
        print("Identified query:\n", file=output)
        print(render_query(outcome.identified_query, database.schema), file=output)
        return 0
    print("QFE could not narrow the candidates to a single query. Remaining candidates:",
          file=output)
    for query in outcome.remaining_queries:
        print("  " + render_query(query, database.schema).replace("\n", " "), file=output)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
