"""Checkpoint persistence: the :class:`SessionStore` backends.

A store maps session ids to opaque checkpoint blobs (produced by
:mod:`repro.service.checkpoint`). Two backends ship:

* :class:`InMemorySessionStore` — per-process, for tests and ephemeral
  services;
* :class:`FileSessionStore` — one file per session under a directory, written
  **atomically** (temp file + ``os.replace`` in the same directory), so a
  killed process never leaves a half-written checkpoint and a concurrent
  reader always sees either the previous or the new blob.

Both evict automatically: entries older than ``ttl_seconds`` die on any store
operation, and when ``max_sessions`` is exceeded the least-recently-*used*
entries go first (a ``get`` refreshes recency, so active sessions survive a
crowd of abandoned ones). The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading
import time
from abc import ABC, abstractmethod
from collections import OrderedDict
from pathlib import Path
from typing import Callable

from repro.exceptions import CheckpointError, SessionNotFound

__all__ = ["SessionStore", "InMemorySessionStore", "FileSessionStore"]

#: Session ids must be fit for filenames: no separators, no traversal.
_SESSION_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

#: Suffix of on-disk checkpoint files.
CHECKPOINT_SUFFIX = ".qfec"


def _check_session_id(session_id: str) -> str:
    if not _SESSION_ID_PATTERN.match(session_id):
        raise CheckpointError(f"invalid session id {session_id!r}")
    return session_id


class SessionStore(ABC):
    """Persist and recall session checkpoints by id."""

    @abstractmethod
    def put(self, session_id: str, blob: bytes) -> None:
        """Store (overwrite) the checkpoint for *session_id*."""

    @abstractmethod
    def get(self, session_id: str) -> bytes:
        """The stored checkpoint; raises :class:`SessionNotFound` when absent."""

    @abstractmethod
    def delete(self, session_id: str) -> bool:
        """Drop the checkpoint; returns whether one existed."""

    @abstractmethod
    def ids(self) -> list[str]:
        """All stored (non-expired) session ids."""

    def __contains__(self, session_id: str) -> bool:
        return session_id in self.ids()

    def __len__(self) -> int:
        return len(self.ids())

    def close(self) -> None:
        """Release store resources (no-op by default)."""


class InMemorySessionStore(SessionStore):
    """Checkpoints in an LRU-ordered dict with optional TTL expiry."""

    def __init__(
        self,
        *,
        max_sessions: int | None = None,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        # The manager checkpoints concurrent sessions from their own threads.
        self._lock = threading.Lock()
        #: id -> (blob, last-used timestamp); order == recency (oldest first).
        self._entries: "OrderedDict[str, tuple[bytes, float]]" = OrderedDict()

    def _expire_locked(self) -> None:
        if self.ttl_seconds is None:
            return
        deadline = self._clock() - self.ttl_seconds
        stale = [sid for sid, (_, used) in self._entries.items() if used <= deadline]
        for sid in stale:
            del self._entries[sid]

    def put(self, session_id: str, blob: bytes) -> None:
        _check_session_id(session_id)
        with self._lock:
            self._expire_locked()
            self._entries[session_id] = (bytes(blob), self._clock())
            self._entries.move_to_end(session_id)
            if self.max_sessions is not None:
                while len(self._entries) > self.max_sessions:
                    self._entries.popitem(last=False)

    def get(self, session_id: str) -> bytes:
        _check_session_id(session_id)
        with self._lock:
            self._expire_locked()
            entry = self._entries.get(session_id)
            if entry is None:
                raise SessionNotFound(f"no checkpoint stored for session {session_id!r}")
            blob, _ = entry
            self._entries[session_id] = (blob, self._clock())
            self._entries.move_to_end(session_id)
            return blob

    def delete(self, session_id: str) -> bool:
        _check_session_id(session_id)
        with self._lock:
            return self._entries.pop(session_id, None) is not None

    def ids(self) -> list[str]:
        with self._lock:
            self._expire_locked()
            return list(self._entries)


class FileSessionStore(SessionStore):
    """One checkpoint file per session under *directory*, written atomically.

    Recency for LRU eviction and TTL expiry rides on file modification
    times: ``put`` rewrites the file, ``get`` touches it. The directory is
    the unit of persistence — a service restarted with the same directory
    sees every checkpoint the killed process had durably written.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        max_sessions: int | None = None,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self._clock = clock

    def _path(self, session_id: str) -> Path:
        return self.directory / f"{_check_session_id(session_id)}{CHECKPOINT_SUFFIX}"

    def _entries(self) -> list[tuple[int, str, Path]]:
        """Checkpoints ordered least-recently-used first.

        Recency is ``st_mtime_ns``: the float ``st_mtime`` quantizes to
        ~100 ns at current epochs (and to whole seconds on coarse
        filesystems), so checkpoints written close together tied and the sort
        fell through to ``Path`` comparison — which could evict the *newest*
        session. Exact ties (same nanosecond) break on the file name, which
        is stable rather than recency-correct but at least deterministic.
        """
        entries = []
        for path in self.directory.glob(f"*{CHECKPOINT_SUFFIX}"):
            try:
                entries.append((path.stat().st_mtime_ns, path.name, path))
            except OSError:  # pragma: no cover - raced with a delete
                continue
        entries.sort(key=lambda entry: entry[:2])
        return entries

    def _expire(self) -> None:
        entries = self._entries()
        if self.ttl_seconds is not None:
            deadline_ns = int((self._clock() - self.ttl_seconds) * 1_000_000_000)
            for mtime_ns, _, path in entries:
                if mtime_ns <= deadline_ns:
                    path.unlink(missing_ok=True)
            entries = [entry for entry in entries if entry[0] > deadline_ns]
        if self.max_sessions is not None:
            overflow = len(entries) - self.max_sessions
            if overflow > 0:  # a negative slice bound would evict from the front
                for _, _, path in entries[:overflow]:
                    path.unlink(missing_ok=True)

    def put(self, session_id: str, blob: bytes) -> None:
        path = self._path(session_id)
        # Atomic replace: the temp file lives in the same directory so the
        # rename never crosses filesystems; a crash leaves either the old
        # checkpoint or the new one, never a torn write.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{session_id}.", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._expire()

    def get(self, session_id: str) -> bytes:
        self._expire()
        path = self._path(session_id)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            raise SessionNotFound(
                f"no checkpoint stored for session {session_id!r}"
            ) from None
        os.utime(path)  # refresh recency for LRU eviction
        return blob

    def delete(self, session_id: str) -> bool:
        path = self._path(session_id)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def ids(self) -> list[str]:
        self._expire()
        return sorted(path.name[: -len(CHECKPOINT_SUFFIX)] for path in
                      self.directory.glob(f"*{CHECKPOINT_SUFFIX}"))
