"""A minimal HTTP client for the QFE session service (stdlib ``urllib`` only).

Used by the integration tests, the CI smoke driver and
``examples/interactive_service.py``; mirrors the endpoint set of
:mod:`repro.service.server` one method per route. Every method returns the
decoded JSON payload; HTTP error statuses raise :class:`ServiceClientError`
carrying the status code and the server's ``error`` message.
"""

from __future__ import annotations

import json
from typing import Any
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.exceptions import ServiceError

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(ServiceError):
    """An HTTP-level failure talking to the session service."""

    def __init__(self, status: int | None, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talk to a running ``qfe-serve`` instance."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ plumbing
    def _request(self, method: str, path: str, payload: dict | None = None) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json; charset=utf-8"
        request = Request(url, data=data, headers=headers, method=method)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                body = response.read()
        except HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
            except Exception:
                message = str(exc)
            raise ServiceClientError(exc.code, message) from exc
        except URLError as exc:
            raise ServiceClientError(None, f"cannot reach {url}: {exc.reason}") from exc
        return json.loads(body.decode("utf-8"))

    # ------------------------------------------------------------------- routes
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def list_sessions(self) -> list[str]:
        return self._request("GET", "/sessions")["sessions"]

    def create_session(
        self,
        workload: str,
        *,
        scale: float = 1.0,
        candidate_count: int | None = None,
        config: dict | None = None,
    ) -> dict:
        payload: dict = {"workload": workload, "scale": scale}
        if candidate_count is not None:
            payload["candidate_count"] = candidate_count
        if config:
            payload["config"] = config
        return self._request("POST", "/sessions", payload)

    def get_round(self, session_id: str) -> dict:
        return self._request("GET", f"/sessions/{session_id}/round")

    def submit_choice(self, session_id: str, choice: int) -> dict:
        return self._request("POST", f"/sessions/{session_id}/choice", {"choice": choice})

    def transcript(self, session_id: str, *, include_timings: bool = False) -> dict:
        suffix = "?timings=1" if include_timings else ""
        return self._request("GET", f"/sessions/{session_id}/transcript{suffix}")

    def delete_session(self, session_id: str) -> dict:
        return self._request("DELETE", f"/sessions/{session_id}")

    # --------------------------------------------------------------- convenience
    @staticmethod
    def worst_case_choice(round_payload: dict) -> int:
        """The worst-case user's pick for a ``get_round`` payload.

        Mirrors :class:`~repro.core.feedback.WorstCaseSelector`: the option
        backed by the most candidate queries, first index on ties — so an
        HTTP-driven session reproduces the in-process worst-case transcript
        bit for bit.
        """
        options = round_payload["round"]["options"]
        best_index, best_count = 0, -1
        for option in options:
            if option["query_count"] > best_count:
                best_count = option["query_count"]
                best_index = option["index"]
        return best_index
