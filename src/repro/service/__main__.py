"""``python -m repro.service`` — alias for the ``qfe-serve`` console script."""

import sys

from repro.service.cli import main

if __name__ == "__main__":
    sys.exit(main())
