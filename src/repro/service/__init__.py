"""The QFE session service layer: suspendable, persistent, multiplexable sessions.

The paper's interaction loop is human-paced — response time dominates
per-iteration wall clock — so serving many interactive users from one process
means never blocking on a user. This package builds that serving story on the
resumable :class:`~repro.core.session.QFESession` state machine:

* :mod:`repro.service.checkpoint` — versioned checkpoint and transcript
  serializers (suspend a session to bytes, resume it bit-identically, in the
  same process or another one);
* :mod:`repro.service.store` — checkpoint persistence: in-memory and on-disk
  backends with atomic writes and LRU/TTL eviction;
* :mod:`repro.service.manager` — :class:`SessionManager` multiplexing many
  live sessions over shared per-database base snapshots and one shared
  execution backend, with per-session locks and service metrics;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a small HTTP
  JSON API over the manager (stdlib only) and the matching client;
* :mod:`repro.service.cli` — the ``qfe-serve`` console entry point.
"""

from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    DatabaseRef,
    capture_checkpoint,
    read_checkpoint_header,
    restore_checkpoint,
    session_transcript,
    transcript_json,
)
from repro.service.manager import SessionManager
from repro.service.store import FileSessionStore, InMemorySessionStore, SessionStore

__all__ = [
    "CHECKPOINT_VERSION",
    "DatabaseRef",
    "capture_checkpoint",
    "read_checkpoint_header",
    "restore_checkpoint",
    "session_transcript",
    "transcript_json",
    "SessionManager",
    "SessionStore",
    "InMemorySessionStore",
    "FileSessionStore",
]
