"""The HTTP JSON API over a :class:`~repro.service.manager.SessionManager`.

Stdlib only (:mod:`http.server`), threaded: each request runs on its own
thread and the manager's per-session and per-pair locks provide the actual
serialization, so one slow round search never blocks health checks or other
sessions' requests.

Endpoints (all request/response bodies are JSON):

========  ==============================  ========================================
method    path                            meaning
========  ==============================  ========================================
POST      ``/sessions``                   create a session (workload + options)
GET       ``/sessions``                   list live session ids
GET       ``/sessions/{id}/round``        the pending round's deltas and options
POST      ``/sessions/{id}/choice``       submit a choice (``-1`` = none of these)
GET       ``/sessions/{id}/transcript``   canonical transcript (``?timings=1`` adds wall clock)
DELETE    ``/sessions/{id}``              drop the session and its checkpoint
GET       ``/healthz``                    liveness
GET       ``/metrics``                    service metrics (JSON)
========  ==============================  ========================================

Errors map onto conventional statuses: unknown session → 404, malformed
request or invalid choice → 400, stepping a finished session → 409,
anything unexpected → 500; every error body is ``{"error": message}``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.config import QFEConfig
from repro.core.session import PendingRound, StepResult
from repro.exceptions import (
    CheckpointError,
    FeedbackError,
    QFESessionError,
    ReproError,
    ServiceError,
    SessionNotFound,
)
from repro.obs.exposition import PROMETHEUS_CONTENT_TYPE
from repro.service.checkpoint import feedback_round_dict, iteration_record_dict
from repro.service.manager import ManagedSession, SessionManager

__all__ = ["QFEServiceServer", "make_server", "serve"]

#: QFEConfig fields a client may set per session; everything else is fixed
#: server-side (notably ``workers``: the pool belongs to the service).
_CLIENT_CONFIG_FIELDS = {
    "beta",
    "delta_seconds",
    "max_iterations",
    "max_skyline_pairs",
    "max_subset_size",
    "set_semantics",
}


def _session_payload(managed: ManagedSession) -> dict:
    session = managed.session
    return {
        "session_id": managed.session_id,
        "workload": managed.workload,
        "status": session.status,
        "iteration_count": session.outcome.iteration_count,
        "remaining_candidates": session.remaining_candidates,
    }


def _round_payload(managed: ManagedSession, pending: PendingRound | None) -> dict:
    payload = _session_payload(managed)
    if pending is None:
        outcome = managed.session.outcome
        identified_sql = None
        if outcome.identified_query is not None:
            from repro.sql.render import render_query

            identified_sql = render_query(
                outcome.identified_query, managed.session.database.schema
            )
        payload["round"] = None
        payload["identified_sql"] = identified_sql
        payload["remaining_candidates"] = len(outcome.remaining_queries)
        return payload
    round_payload = feedback_round_dict(pending.round)
    round_payload["candidate_count"] = pending.candidate_count
    round_payload["option_count"] = pending.option_count
    payload["round"] = round_payload
    return payload


def _step_payload(managed: ManagedSession, step: StepResult) -> dict:
    payload = _session_payload(managed)
    payload["step"] = {
        "status": step.status,
        "done": step.done,
        "remaining_candidates": step.remaining_candidates,
        "record": (
            iteration_record_dict(step.record, include_timings=True)
            if step.record is not None
            else None
        ),
    }
    return payload


class _RequestHandler(BaseHTTPRequestHandler):
    server_version = "qfe-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def manager(self) -> SessionManager:
        return self.server.manager  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if getattr(self.server, "verbose", False):  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        try:
            parsed = urlparse(self.path)
            parts = [part for part in parsed.path.split("/") if part]
            query = parse_qs(parsed.query)
            self._route(method, parts, query)
        except SessionNotFound as exc:
            self._send_json(404, {"error": str(exc)})
        except (FeedbackError, CheckpointError, ServiceError, ValueError, TypeError) as exc:
            # ValueError/TypeError: client-supplied config values that fail
            # QFEConfig validation (out of range or wrongly typed).
            self._send_json(400, {"error": str(exc)})
        except QFESessionError as exc:
            self._send_json(409, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(500, {"error": str(exc)})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self._send_json(500, {"error": f"internal error: {exc}"})

    # -------------------------------------------------------------------- routes
    def _route(self, method: str, parts: list[str], query: dict) -> None:
        if method == "GET" and parts == ["healthz"]:
            self._send_json(200, self.manager.healthz())
            return
        if method == "GET" and parts == ["metrics"]:
            # Content negotiation: JSON stays the default contract; Prometheus
            # exposition on explicit request via query or Accept header.
            wants_prometheus = query.get("format", [""])[-1] == "prometheus" or (
                "prometheus" in (self.headers.get("Accept") or "").lower()
            )
            if wants_prometheus:
                self._send_text(
                    200, self.manager.prometheus_metrics(), PROMETHEUS_CONTENT_TYPE
                )
            else:
                self._send_json(200, self.manager.metrics())
            return
        if parts[:1] == ["sessions"]:
            if method == "POST" and len(parts) == 1:
                self._create_session()
                return
            if method == "GET" and len(parts) == 1:
                self._send_json(200, {"sessions": self.manager.session_ids()})
                return
            if len(parts) == 2 and method == "DELETE":
                existed = self.manager.delete_session(parts[1])
                if not existed:
                    raise SessionNotFound(f"unknown session {parts[1]!r}")
                self._send_json(200, {"deleted": parts[1]})
                return
            if len(parts) == 3 and method == "GET" and parts[2] == "round":
                managed, pending = self.manager.get_round(parts[1])
                self._send_json(200, _round_payload(managed, pending))
                return
            if len(parts) == 3 and method == "POST" and parts[2] == "choice":
                body = self._read_json()
                if "choice" not in body:
                    raise ServiceError('request body must carry a "choice" field')
                choice = body["choice"]
                if not isinstance(choice, int) or isinstance(choice, bool):
                    raise ServiceError("choice must be an integer option index")
                managed, step = self.manager.submit_choice(parts[1], choice)
                self._send_json(200, _step_payload(managed, step))
                return
            if len(parts) == 3 and method == "GET" and parts[2] == "transcript":
                include_timings = query.get("timings", ["0"])[-1] in ("1", "true", "yes")
                transcript = self.manager.transcript(
                    parts[1], include_timings=include_timings
                )
                self._send_json(200, transcript)
                return
        self._send_json(404, {"error": f"no route for {method} {self.path}"})

    def _create_session(self) -> None:
        body = self._read_json()
        workload = body.get("workload")
        if not isinstance(workload, str) or not workload:
            raise ServiceError('session creation requires a "workload" name')
        scale = body.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
            raise ServiceError("scale must be a positive number")
        candidate_count = body.get("candidate_count")
        if candidate_count is not None and (
            not isinstance(candidate_count, int)
            or isinstance(candidate_count, bool)
            or candidate_count < 2
        ):
            raise ServiceError("candidate_count must be an integer >= 2")
        config = QFEConfig()
        overrides = body.get("config") or {}
        if not isinstance(overrides, dict):
            raise ServiceError('"config" must be a JSON object')
        unknown = set(overrides) - _CLIENT_CONFIG_FIELDS
        if unknown:
            raise ServiceError(
                f"unsupported config fields {sorted(unknown)}; "
                f"clients may set {sorted(_CLIENT_CONFIG_FIELDS)}"
            )
        if overrides:
            config = config.with_overrides(**overrides)
        managed = self.manager.create_session(
            workload=workload,
            scale=float(scale),
            candidate_count=candidate_count,
            config=config,
        )
        self._send_json(201, _session_payload(managed))

    # ------------------------------------------------------------------- verbs
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("DELETE")


class QFEServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one session manager."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], manager: SessionManager,
                 *, verbose: bool = False) -> None:
        super().__init__(address, _RequestHandler)
        self.manager = manager
        self.verbose = verbose

    def serve_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests and examples); returns the thread."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        """Stop serving and close the manager (checkpointing live sessions)."""
        self.shutdown()
        self.server_close()
        self.manager.close()


def make_server(
    manager: SessionManager, host: str = "127.0.0.1", port: int = 0,
    *, verbose: bool = False,
) -> QFEServiceServer:
    """Bind a service server; ``port=0`` picks a free port (see ``server_address``)."""
    return QFEServiceServer((host, port), manager, verbose=verbose)


def serve(manager: SessionManager, host: str = "127.0.0.1", port: int = 8642,
          *, verbose: bool = False) -> None:
    """Serve until interrupted (the ``qfe-serve`` entry point's main loop)."""
    server = make_server(manager, host, port, verbose=verbose)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.close()
