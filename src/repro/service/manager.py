"""Multiplex many live QFE sessions over shared snapshots and one backend.

One :class:`SessionManager` hosts the sessions of many concurrent users. The
economics follow the paper's user study: compute per round is small compared
to the human response time around it, so a single execution backend — one
worker pool, not one per session — serves every session's round search, and
sessions over the same example database share the base state that makes
rounds cheap:

* one live :class:`~repro.relational.database.Database` instance per
  ``(workload, scale)`` pair (sessions never mutate the base);
* one :class:`~repro.relational.evaluator.JoinCache` per pair, so the
  foreign-key join and its columnar term masks are built once for *all*
  sessions, not once per session;
* one :class:`~repro.relational.evaluator.SharedSnapshotCache`, so a pooled
  backend broadcasts the base snapshot to its workers once per pair, not
  once per session switch.

Concurrency model: each session has its own lock (a session's propose/submit
steps are serialized), and each shared pair has a compute lock serializing
round *searches* that touch the pair's shared caches. Rounds therefore
execute one at a time per pair — each still fanning out across every pool
worker — while any number of sessions sit suspended awaiting a user, which
is where interactive sessions spend almost all of their time.

Known trade-off of the one-pool design: a pooled backend binds its worker
processes to one broadcast base snapshot, so traffic that *interleaves
rounds across different pairs* re-seeds the pool on every pair switch
(correct, but it pays pool startup per switch). The ``warm`` backend
softens this: its workers are persistent and versioned, so a pair switch
re-installs base state lazily inside live workers (one snapshot ship, no
pool teardown), repeated rounds on one pair hit worker-resident plan
caches, and pair eviction calls ``release_base`` so the pool never pins a
dead database. Deployments serving several heavy workloads concurrently
should still prefer one manager — one pool — per workload family; within a
pair the install happens once, which is the common interactive case this
layer optimizes for.

Persistence: with a :class:`~repro.service.store.SessionStore` attached, the
manager checkpoints a session after every state change, evicts
least-recently-used live sessions to the store when ``max_live_sessions`` is
exceeded (passivation), and transparently resumes any checkpointed session —
including after a process kill — on its next request.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.config import QFEConfig
from repro.core.execution_backend import ExecutionBackend, create_backend
from repro.core.session import PendingRound, QFESession, StepResult
from repro.core.timing import Stopwatch
from repro.exceptions import ServiceError, SessionNotFound
from repro.obs.exposition import render_prometheus
from repro.obs.registry import REGISTRY, MetricsRegistry, RegistryStats
from repro.qbo.config import QBOConfig
from repro.relational.database import Database
from repro.relational.evaluator import JoinCache, SharedSnapshotCache
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation
from repro.service.checkpoint import (
    DatabaseRef,
    capture_checkpoint,
    restore_checkpoint,
    session_transcript,
)
from repro.service.store import SessionStore

__all__ = ["SessionManager", "ManagedSession", "workload_session_inputs"]

#: Candidate generation defaults for workload-backed service sessions; small
#: enough for interactive latency, rich enough to need several rounds.
_SERVICE_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=16)


def workload_session_inputs(
    workload: str,
    scale: float,
    *,
    candidate_count: int | None = None,
    qbo_config: QBOConfig | None = None,
) -> tuple[Database, Relation, SPJQuery, list[SPJQuery]]:
    """Build ``(D, R, target, candidates)`` for a workload-backed session.

    Deterministic end to end (seeded datasets, deterministic candidate
    generation), so a service session and an in-process reference run built
    from the same arguments — even in different processes — start from
    identical inputs. Shared by the manager, the differential tests and the
    CI smoke driver.
    """
    from repro.experiments.runner import prepare_candidates
    from repro.workloads import build_pair

    database, result, target = build_pair(workload, scale)
    candidates, _ = prepare_candidates(
        database,
        result,
        target,
        qbo_config=qbo_config or _SERVICE_QBO,
        candidate_count=candidate_count,
    )
    return database, result, target, candidates


@dataclass
class _SharedPair:
    """The per-(workload, scale) state every session of that pair shares."""

    key: tuple
    database: Database
    result: Relation
    target: SPJQuery | None
    join_cache: JoinCache = field(default_factory=JoinCache)
    #: Serializes round searches over the pair's shared caches.
    compute_lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class ManagedSession:
    """One live session plus its service bookkeeping."""

    session_id: str
    session: QFESession
    pair: _SharedPair
    workload: str | None
    scale: float
    created_at: float
    last_used: float
    lock: threading.RLock = field(default_factory=threading.RLock)
    rounds_served: int = 0
    choices_submitted: int = 0

    @property
    def database_ref(self) -> DatabaseRef:
        if self.workload is not None:
            return DatabaseRef.workload(self.workload, self.scale)
        return DatabaseRef.inline()


class _Metrics(RegistryStats):
    """Thread-safe service counters plus a bounded round-latency histogram.

    Registry-backed: counters and the round-latency Histogram (Prometheus
    buckets + a bounded reservoir for the exact p50/p95 of the JSON payload)
    live in a **private** :class:`MetricsRegistry` — each manager's metrics
    are its own, as the historical per-instance counters were — which the
    Prometheus endpoint renders alongside the process-wide registry.
    """

    _PREFIX = "qfe_service"
    _FIELDS = (
        "sessions_created",
        "sessions_resumed",
        "sessions_deleted",
        "sessions_passivated",
        "rounds_served",
        "choices_submitted",
        "checkpoints_written",
    )
    _HELP = {
        "sessions_created": "Sessions created from scratch.",
        "sessions_resumed": "Sessions restored from a checkpoint.",
        "sessions_deleted": "Sessions deleted by request.",
        "sessions_passivated": "Live sessions evicted to the store.",
        "rounds_served": "Feedback rounds proposed to users.",
        "choices_submitted": "User choices applied to pending rounds.",
        "checkpoints_written": "Session checkpoints written to the store.",
    }

    def __init__(self, window: int = 512) -> None:
        super().__init__(MetricsRegistry())
        self._latency = self.registry.histogram(
            "qfe_service_round_latency_seconds",
            "End-to-end round proposal latency.",
            reservoir=window,
        )

    def bump(self, counter: str, amount: int = 1) -> None:
        self._counters[counter].inc(amount)

    def observe_round_latency(self, seconds: float) -> None:
        self._latency.observe(seconds)

    def reset(self) -> None:
        super().reset()
        self._latency.reset()

    def snapshot(self) -> dict:
        payload: dict = {field: self._counters[field].value for field in self._FIELDS}
        payload["round_latency_seconds"] = {
            "count": self._latency.observation_count(),
            "p50": self._latency.quantile(0.50),
            "p95": self._latency.quantile(0.95),
        }
        return payload


class SessionManager:
    """Host many resumable QFE sessions over one shared execution backend."""

    def __init__(
        self,
        *,
        workers: int = 0,
        backend: ExecutionBackend | None = None,
        backend_name: str = "auto",
        store: SessionStore | None = None,
        checkpoint_each_step: bool = True,
        max_live_sessions: int = 64,
        max_warm_pairs: int = 8,
        clock=time.time,
    ) -> None:
        if max_live_sessions < 1:
            raise ValueError("max_live_sessions must be at least 1")
        if max_warm_pairs < 1:
            raise ValueError("max_warm_pairs must be at least 1")
        self.workers = workers
        self._owns_backend = backend is None
        # ``backend`` (a live ExecutionBackend) wins; otherwise the manager
        # builds one from (workers, backend_name) — validated at build time,
        # so a bad service config fails on startup, not mid-session.
        self.backend = (
            backend if backend is not None else create_backend(workers, backend_name)
        )
        self.store = store
        self.checkpoint_each_step = checkpoint_each_step and store is not None
        self.max_live_sessions = max_live_sessions
        self.max_warm_pairs = max_warm_pairs
        self._clock = clock
        self._snapshot_cache = SharedSnapshotCache()
        self._pairs: dict[tuple, _SharedPair] = {}
        self._sessions: dict[str, ManagedSession] = {}
        self._lock = threading.RLock()
        self._metrics = _Metrics()
        self._closed = False

    # ------------------------------------------------------------------ pairs
    def _pair_for_workload(self, workload: str, scale: float) -> _SharedPair:
        key = ("workload", workload, float(scale))
        with self._lock:
            pair = self._pairs.get(key)
            if pair is None:
                from repro.workloads import build_pair

                # Prune before inserting: the fresh pair has no session yet
                # and must not be eligible for its own eviction sweep.
                self._prune_pairs_locked()
                database, result, target = build_pair(workload, scale)
                pair = _SharedPair(key=key, database=database, result=result, target=target)
                self._pairs[key] = pair
            return pair

    def _pair_for_inline(self, database: Database, result: Relation) -> _SharedPair:
        key = ("inline", id(database))
        with self._lock:
            pair = self._pairs.get(key)
            if pair is None or pair.database is not database:
                pair = _SharedPair(key=key, database=database, result=result, target=None)
                self._pairs[key] = pair
            return pair

    def _prune_pairs_locked(self) -> None:
        """Drop shared pairs no live session references.

        Each pair pins a full live database, and clients choose the
        ``(workload, scale)`` key — left unchecked, organic traffic over many
        scales would accumulate datasets forever. Inline pairs die as soon as
        their sessions are gone (a resumed inline session re-registers
        through its embedded pair); workload pairs stay warm up to
        ``max_warm_pairs`` (a later session or resume rebuilds them
        deterministically, so eviction costs time, never correctness).
        """
        referenced = {id(m.pair) for m in self._sessions.values()}
        unreferenced = [
            key for key, pair in self._pairs.items() if id(pair) not in referenced
        ]

        def drop(key: tuple) -> None:
            # The shared snapshot cache strongly references the pair's base
            # database (the snapshot is the broadcast payload); evict its
            # entry too or the pair's whole database would stay pinned. A
            # warm pool additionally pins the installed base through its
            # snapshot reference — tell it to forget (resident workers
            # upgrade lazily on the next round over a different pair).
            pair = self._pairs.pop(key)
            self._snapshot_cache.evict(pair.database)
            release = getattr(self.backend, "release_base", None)
            if release is not None:
                release(pair.database)

        for key in unreferenced:
            if key[0] == "inline":
                drop(key)
        overflow = len(self._pairs) - self.max_warm_pairs
        if overflow > 0:
            for key in unreferenced:
                if overflow <= 0:
                    break
                if key in self._pairs:
                    drop(key)
                    overflow -= 1

    # ----------------------------------------------------------------- create
    def create_session(
        self,
        *,
        workload: str | None = None,
        scale: float = 1.0,
        candidate_count: int | None = None,
        candidates: Sequence[SPJQuery] | None = None,
        database: Database | None = None,
        result: Relation | None = None,
        config: QFEConfig | None = None,
        qbo_config: QBOConfig | None = None,
        session_id: str | None = None,
    ) -> ManagedSession:
        """Create (and register) a session from a workload name or an explicit pair.

        Workload sessions share the manager's per-pair base state; explicit
        ``database``/``result`` sessions get their own. Candidates are built
        deterministically from the pair unless supplied.
        """
        self._check_open()
        if workload is not None:
            pair = self._pair_for_workload(workload, scale)
            if candidates is None:
                from repro.experiments.runner import prepare_candidates

                candidates, _ = prepare_candidates(
                    pair.database,
                    pair.result,
                    pair.target,
                    qbo_config=qbo_config or _SERVICE_QBO,
                    candidate_count=candidate_count,
                )
        else:
            if database is None or result is None:
                raise ServiceError(
                    "create_session needs either workload= or database= and result="
                )
            pair = self._pair_for_inline(database, result)
        session = QFESession(
            pair.database,
            pair.result,
            candidates=candidates,
            config=config,
            qbo_config=qbo_config,
            backend=self.backend,
            join_cache=pair.join_cache,
            snapshot_cache=self._snapshot_cache,
        )
        sid = session_id or f"s-{uuid.uuid4().hex[:12]}"
        now = self._clock()
        managed = ManagedSession(
            session_id=sid,
            session=session,
            pair=pair,
            workload=workload,
            scale=float(scale),
            created_at=now,
            last_used=now,
        )
        with self._lock:
            if sid in self._sessions:
                raise ServiceError(f"session id {sid!r} already exists")
            self._sessions[sid] = managed
            try:
                self._passivate_overflow_locked(keep=sid)
            except ServiceError:
                # No store to passivate into: refuse the new session instead
                # of silently exceeding the live-session capacity.
                del self._sessions[sid]
                raise
            self._metrics.bump("sessions_created")
        self._checkpoint(managed)
        return managed

    # ----------------------------------------------------------------- lookup
    def _resolve(self, session_id: str) -> ManagedSession:
        """The live session for *session_id*, resuming from the store if needed.

        The restore itself — store read, unpickle, possibly a full dataset
        rebuild from a workload reference — runs *outside* the manager-wide
        lock so one slow resume never blocks other sessions' requests or the
        health endpoints; only the registry insert is serialized (and a
        concurrent resume of the same id keeps the first winner).
        """
        with self._lock:
            managed = self._sessions.get(session_id)
            if managed is not None:
                return managed
            if self.store is None:
                raise SessionNotFound(f"unknown session {session_id!r}")
        blob = self.store.get(session_id)  # raises SessionNotFound when absent
        managed = self._restore(session_id, blob)
        with self._lock:
            existing = self._sessions.get(session_id)
            if existing is not None:  # another thread resumed it first
                return existing
            self._sessions[session_id] = managed
            self._metrics.bump("sessions_resumed")
            self._passivate_overflow_locked(keep=session_id)
            return managed

    def _restore(self, session_id: str, blob: bytes) -> ManagedSession:
        from repro.service.checkpoint import read_checkpoint_header

        header = read_checkpoint_header(blob)
        ref = DatabaseRef.from_json(header.get("database_ref") or {})
        if ref.kind == "workload":
            pair = self._pair_for_workload(ref.name, ref.scale)
            session, _ = restore_checkpoint(
                blob,
                database=pair.database,
                result=pair.result,
                backend=self.backend,
                join_cache=pair.join_cache,
                snapshot_cache=self._snapshot_cache,
            )
            workload, scale = ref.name, ref.scale
        else:
            session, _ = restore_checkpoint(
                blob,
                backend=self.backend,
                snapshot_cache=self._snapshot_cache,
            )
            pair = self._pair_for_inline(session.database, session.result)
            workload, scale = None, 1.0
        now = self._clock()
        managed = ManagedSession(
            session_id=session_id,
            session=session,
            pair=pair,
            workload=workload,
            scale=float(scale),
            created_at=now,
            last_used=now,
        )
        return managed

    def _passivate_overflow_locked(self, *, keep: str) -> None:
        overflow = len(self._sessions) - self.max_live_sessions
        if overflow <= 0:
            return
        if self.store is None:
            raise ServiceError(
                f"live session capacity ({self.max_live_sessions}) reached "
                "and no session store is attached for passivation"
            )
        # Coldest first; a victim whose lock another thread holds is mid-step
        # and must not be checkpointed under it — skip it this time (the
        # overflow clears on a later call). ``keep`` is the session the
        # current request is about.
        candidates = sorted(
            (sid for sid in self._sessions if sid != keep),
            key=lambda sid: self._sessions[sid].last_used,
        )
        for victim_id in candidates:
            if overflow <= 0:
                return
            victim = self._sessions[victim_id]
            if not victim.lock.acquire(blocking=False):
                continue
            try:
                self.store.put(
                    victim_id,
                    capture_checkpoint(
                        victim.session,
                        session_id=victim_id,
                        database_ref=victim.database_ref,
                    ),
                )
                del self._sessions[victim_id]
            finally:
                victim.lock.release()
            overflow -= 1
            self._metrics.bump("sessions_passivated")
            self._metrics.bump("checkpoints_written")
        self._prune_pairs_locked()

    # ------------------------------------------------------------------ steps
    def _checkpoint(self, managed: ManagedSession) -> None:
        if not self.checkpoint_each_step:
            return
        self.store.put(
            managed.session_id,
            capture_checkpoint(
                managed.session,
                session_id=managed.session_id,
                database_ref=managed.database_ref,
            ),
        )
        self._metrics.bump("checkpoints_written")

    @contextmanager
    def _locked(self, session_id: str) -> Iterator[ManagedSession]:
        """Resolve the session and hold its step lock, passivation-proof.

        Between :meth:`_resolve` handing out a live session and the caller
        acquiring its lock, a concurrent overflow passivation could have
        checkpointed and evicted it — stepping the orphaned instance while a
        later request resumes a second one would fork the session's state.
        So after acquiring the lock, re-check the instance is still the
        registered one and re-resolve if not; once the lock is held *and*
        registration is confirmed, passivation's try-lock can no longer
        touch it.
        """
        while True:
            managed = self._resolve(session_id)
            managed.lock.acquire()
            with self._lock:
                current = self._sessions.get(session_id) is managed
            if not current:
                managed.lock.release()
                continue
            try:
                yield managed
            finally:
                managed.lock.release()
            return

    def get_round(self, session_id: str) -> tuple[ManagedSession, PendingRound | None]:
        """Propose (or replay) the session's current round.

        Idempotent while a round is pending. Returns ``(managed, None)`` when
        the session has finished. The round search runs under the pair's
        compute lock so concurrent sessions never race on shared caches.
        """
        with self._locked(session_id) as managed:
            managed.last_used = self._clock()
            had_pending = managed.session.pending_round is not None
            was_done = managed.session.done
            watch = Stopwatch()
            with managed.pair.compute_lock:
                pending = managed.session.propose()
            if pending is not None and not had_pending:
                managed.rounds_served += 1
                self._metrics.bump("rounds_served")
                self._metrics.observe_round_latency(watch.elapsed())
                self._checkpoint(managed)
            elif pending is None and not was_done:
                # The propose itself finished the session (converged on a
                # single candidate, exhausted, or out of iterations).
                self._checkpoint(managed)
            return managed, pending

    def submit_choice(self, session_id: str, choice: int) -> tuple[ManagedSession, StepResult]:
        """Apply a user's choice to the session's pending round."""
        with self._locked(session_id) as managed:
            managed.last_used = self._clock()
            with managed.pair.compute_lock:
                # Replenishment (NONE_OF_THE_ABOVE) evaluates candidates over
                # the shared caches, hence the compute lock.
                step = managed.session.submit(choice)
            managed.choices_submitted += 1
            self._metrics.bump("choices_submitted")
            self._checkpoint(managed)
            return managed, step

    def transcript(self, session_id: str, *, include_timings: bool = False) -> dict:
        """The session's transcript (canonical form unless timings are asked for)."""
        with self._locked(session_id) as managed:
            return session_transcript(
                managed.session,
                workload=managed.workload,
                include_timings=include_timings,
            )

    def delete_session(self, session_id: str) -> bool:
        """Drop the live session and its stored checkpoint; returns existence."""
        with self._lock:
            managed = self._sessions.pop(session_id, None)
            if managed is not None:
                self._prune_pairs_locked()
        stored = self.store.delete(session_id) if self.store is not None else False
        if managed is not None:
            managed.session.close()
            self._metrics.bump("sessions_deleted")
        return managed is not None or stored

    # ------------------------------------------------------------- observability
    def session_ids(self) -> list[str]:
        """Ids of all live sessions."""
        with self._lock:
            return sorted(self._sessions)

    def healthz(self) -> dict:
        """Liveness payload for the HTTP endpoint."""
        with self._lock:
            active = len(self._sessions)
        return {
            "status": "closed" if self._closed else "ok",
            "active_sessions": active,
            "backend": self.backend.name,
        }

    def metrics(self) -> dict:
        """Service metrics: sessions, rounds served, p50/p95 round latency."""
        with self._lock:
            active = len(self._sessions)
            shared_pairs = len(self._pairs)
        payload = self._metrics.snapshot()
        payload.update(
            {
                "active_sessions": active,
                "shared_pairs": shared_pairs,
                "backend": self.backend.name,
                "workers": self.workers,
                "stored_checkpoints": len(self.store) if self.store is not None else 0,
            }
        )
        return payload

    def prometheus_metrics(self) -> str:
        """The Prometheus text exposition for ``/metrics?format=prometheus``.

        Renders this manager's private registry (service counters + the
        round-latency histogram) first, then the process-wide registry (join
        maintenance, columnar storage, SQL pushdown), plus a few gauges for
        the live-state fields the JSON payload reports.
        """
        with self._lock:
            active = len(self._sessions)
            shared_pairs = len(self._pairs)
        live = MetricsRegistry()
        live.gauge(
            "qfe_service_active_sessions", "Live (non-passivated) sessions."
        ).set(active)
        live.gauge("qfe_service_shared_pairs", "Shared generator/cache pairs.").set(
            shared_pairs
        )
        live.gauge(
            "qfe_service_stored_checkpoints", "Checkpoints held by the store."
        ).set(len(self.store) if self.store is not None else 0)
        live.gauge("qfe_service_workers", "Configured worker processes.").set(
            self.workers
        )
        return render_prometheus(self._metrics.registry, live, REGISTRY)

    # ------------------------------------------------------------------- close
    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("the session manager is closed")

    def close(self) -> None:
        """Checkpoint every live session (when a store is attached) and shut down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for managed in sessions:
            if self.store is not None:
                try:
                    self.store.put(
                        managed.session_id,
                        capture_checkpoint(
                            managed.session,
                            session_id=managed.session_id,
                            database_ref=managed.database_ref,
                        ),
                    )
                except Exception:  # pragma: no cover - best-effort persistence
                    pass
            managed.session.close()
        if self._owns_backend:
            self.backend.close()
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
