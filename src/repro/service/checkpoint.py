"""Versioned session checkpoints and machine-readable transcripts.

A **checkpoint** is the full state of one :class:`~repro.core.session.QFESession`
— config, surviving candidates, transcript, pending round — serialized so the
session can be suspended (between :meth:`~repro.core.session.QFESession.propose`
and :meth:`~repro.core.session.QFESession.submit`, where sessions spend almost
all of their wall clock) and resumed later, in the same process or another
one, with a bit-identical continuation.

The on-wire format is a hybrid designed for both inspectability and fidelity:

* line 1 — a UTF-8 JSON **header**: format magic, version, session id,
  status, iteration, and the *base-database reference* (see below). Tools can
  read it without unpickling anything.
* the rest — a pickle **payload** of the session state
  (:meth:`QFESession.capture_state`), plus the example pair when it is
  embedded inline.

The base database is stored by **reference** whenever possible: sessions
created from a named paper workload record ``{"kind": "workload", "name",
"scale"}`` and the resuming side rebuilds the (deterministic, seeded) dataset
— keeping checkpoints small and letting many resumed sessions share one live
base instance. Sessions over ad-hoc databases embed the pair inline
(``{"kind": "inline"}``).

Version policy: :data:`CHECKPOINT_VERSION` bumps on any incompatible change
to the header or payload layout; :func:`restore_checkpoint` refuses newer (or
unknown) versions with :class:`~repro.exceptions.CheckpointError` instead of
guessing.

A note on randomness: the interaction loop is deterministic end to end —
dataset builders draw from per-dataset seeded generators at *construction*
time, and round planning/materialization/partitioning contain no randomness
(any future stochastic scoring is contractually seeded from
:func:`~repro.core.execution_backend.attempt_seed`, a pure function of the
round token and attempt index) — so there is no live RNG state to capture,
and resuming from a rebuilt base database is exact rather than approximate.

The **transcript** serializers at the bottom render a session's interaction
history as plain JSON-able dicts. The *canonical* form
(``include_timings=False``) contains only deterministic quantities — choices,
partitions, deltas, costs, counts, the identified SQL — so two runs of the
same session spec can be compared byte-for-byte (the checkpoint/resume and
serial-vs-service differential harnesses do exactly that); ``include_timings``
adds the wall-clock fields for human consumption.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.feedback import FeedbackRound
from repro.core.session import IterationRecord, QFESession, SessionResult
from repro.exceptions import CheckpointError
from repro.obs.trace import get_tracer
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = [
    "CHECKPOINT_VERSION",
    "CHECKPOINT_MAGIC",
    "DatabaseRef",
    "capture_checkpoint",
    "read_checkpoint_header",
    "restore_checkpoint",
    "iteration_record_dict",
    "feedback_round_dict",
    "session_transcript",
    "transcript_json",
]

CHECKPOINT_MAGIC = "qfe-session-checkpoint"
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class DatabaseRef:
    """How a checkpoint refers to its base example pair ``(D, R)``.

    ``workload`` references a named paper workload (rebuilt deterministically
    at resume time from its seeded generator); ``inline`` means the pair is
    embedded in the checkpoint payload itself.
    """

    kind: str  # "workload" | "inline"
    name: str | None = None
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("workload", "inline"):
            raise CheckpointError(f"unknown database reference kind {self.kind!r}")
        if self.kind == "workload" and not self.name:
            raise CheckpointError("workload database reference requires a name")

    @classmethod
    def workload(cls, name: str, scale: float = 1.0) -> "DatabaseRef":
        return cls(kind="workload", name=name, scale=scale)

    @classmethod
    def inline(cls) -> "DatabaseRef":
        return cls(kind="inline")

    def to_json(self) -> dict:
        if self.kind == "workload":
            return {"kind": self.kind, "name": self.name, "scale": self.scale}
        return {"kind": self.kind}

    @classmethod
    def from_json(cls, payload: dict) -> "DatabaseRef":
        try:
            return cls(
                kind=payload["kind"],
                name=payload.get("name"),
                scale=float(payload.get("scale", 1.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed database reference {payload!r}") from exc

    def build(self) -> tuple[Database, Relation]:
        """Rebuild the referenced example pair (workload references only)."""
        if self.kind != "workload":
            raise CheckpointError("only workload references can rebuild their pair")
        from repro.workloads import build_pair

        database, result, _ = build_pair(self.name, self.scale)
        return database, result


# ------------------------------------------------------------------ checkpoint
def capture_checkpoint(
    session: QFESession,
    *,
    session_id: str,
    database_ref: DatabaseRef | None = None,
    metadata: dict | None = None,
) -> bytes:
    """Serialize *session* into one self-describing checkpoint blob.

    With a ``workload`` *database_ref* the example pair is stored by
    reference; otherwise (``None`` or :meth:`DatabaseRef.inline`) the live
    ``database``/``result`` objects are pickled into the payload.
    """
    with get_tracer().span("checkpoint.write", session_id=session_id):
        ref = database_ref if database_ref is not None else DatabaseRef.inline()
        state = session.capture_state()
        payload: dict[str, Any] = {"state": state}
        if ref.kind == "inline":
            payload["database"] = session.database
            payload["result"] = session.result
        header = {
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "session_id": session_id,
            "status": session.status,
            "iteration": state["iteration"],
            "remaining_candidates": (
                len(state["candidates"]) if state["candidates"] is not None else None
            ),
            "database_ref": ref.to_json(),
            "metadata": metadata or {},
        }
        try:
            header_line = json.dumps(header, sort_keys=True).encode("utf-8")
            body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except (TypeError, ValueError, pickle.PicklingError) as exc:
            raise CheckpointError(f"session state cannot be serialized: {exc}") from exc
        return header_line + b"\n" + body


def read_checkpoint_header(blob: bytes) -> dict:
    """Parse and validate a checkpoint's JSON header without unpickling."""
    newline = blob.find(b"\n")
    if newline < 0:
        raise CheckpointError("not a QFE checkpoint: missing header line")
    try:
        header = json.loads(blob[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"not a QFE checkpoint: unreadable header ({exc})") from exc
    if not isinstance(header, dict) or header.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError("not a QFE checkpoint: bad magic")
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    return header


def restore_checkpoint(
    blob: bytes,
    *,
    database: Database | None = None,
    result: Relation | None = None,
    score=None,
    workers: int | None = None,
    backend=None,
    join_cache=None,
    snapshot_cache=None,
) -> tuple[QFESession, dict]:
    """Rebuild the checkpointed session; returns ``(session, header)``.

    The example pair binds in precedence order: explicit ``database``/
    ``result`` arguments (the service passes its shared live instances), the
    inline pair embedded in the payload, then a ``workload`` reference
    rebuild. Process-local resources (score function, backend, caches) are
    never checkpointed and always come from the caller.
    """
    with get_tracer().span("checkpoint.restore"):
        header = read_checkpoint_header(blob)
        body = blob[blob.find(b"\n") + 1 :]
        try:
            payload = pickle.loads(body)
            state = payload["state"]
        except Exception as exc:
            raise CheckpointError(f"checkpoint payload is corrupt: {exc}") from exc
        if database is None or result is None:
            if payload.get("database") is not None:
                database = payload["database"]
                result = payload["result"]
            else:
                ref = DatabaseRef.from_json(header.get("database_ref") or {})
                if ref.kind != "workload":
                    raise CheckpointError(
                        "checkpoint embeds no example pair and has no workload "
                        "reference; pass database= and result= explicitly"
                    )
                database, result = ref.build()
        session = QFESession.from_state(
            database,
            result,
            state,
            score=score,
            workers=workers,
            backend=backend,
            join_cache=join_cache,
            snapshot_cache=snapshot_cache,
        )
        return session, header


# ------------------------------------------------------------------ transcript
def _json_value(value: Any) -> Any:
    """Coerce a stored cell value into a JSON-stable representation."""
    if isinstance(value, float) and value != value:  # NaN has no JSON form
        return "NaN"
    return value


def _rows_payload(relation: Relation) -> list:
    """A relation's bag of rows in canonical (content-sorted) order."""
    items = sorted(relation.bag_of_rows().items(), key=repr)
    return [[[_json_value(v) for v in row], count] for row, count in items]


def iteration_record_dict(record: IterationRecord, *, include_timings: bool = False) -> dict:
    """One :class:`IterationRecord` as a JSON-able dict."""
    payload = {
        "iteration": record.iteration,
        "candidate_count": record.candidate_count,
        "subset_count": record.subset_count,
        "skyline_pair_count": record.skyline_pair_count,
        "db_cost": record.db_cost,
        "result_cost": record.result_cost,
        "modified_attribute_count": record.modified_attribute_count,
        "modified_relation_count": record.modified_relation_count,
        "modified_tuple_count": record.modified_tuple_count,
        "chosen_option": record.chosen_option,
        "remaining_candidates": record.remaining_candidates,
    }
    if include_timings:
        payload["execution_seconds"] = record.execution_seconds
        payload["skyline_seconds"] = record.skyline_seconds
        payload["selection_seconds"] = record.selection_seconds
        payload["materialize_seconds"] = record.materialize_seconds
    return payload


def feedback_round_dict(round_: FeedbackRound) -> dict:
    """One :class:`FeedbackRound` presentation as a JSON-able dict."""
    return {
        "iteration": round_.iteration,
        "database_delta": {
            "cost": round_.database_delta.cost,
            "modified_relation_count": round_.database_delta.modified_relation_count,
            "lines": round_.database_delta.describe(),
        },
        "options": [
            {
                "index": option.index,
                "query_count": option.query_count,
                "delta_cost": option.delta.cost,
                "delta_lines": option.delta.describe(),
                "rows": _rows_payload(option.result),
            }
            for option in round_.options
        ],
    }


def session_transcript(
    session: QFESession,
    *,
    workload: str | None = None,
    include_timings: bool = False,
) -> dict:
    """The session's full interaction history as one JSON-able dict.

    The default (no timings) is the **canonical transcript**: a pure function
    of the session spec and the submitted choices, identical byte-for-byte
    across backends, worker counts, and checkpoint/resume boundaries.
    """
    outcome: SessionResult = session.outcome
    identified_sql = None
    if outcome.identified_query is not None:
        from repro.sql.render import render_query

        identified_sql = render_query(outcome.identified_query, session.database.schema)
    payload: dict[str, Any] = {
        "workload": workload,
        "status": session.status,
        "converged": outcome.converged,
        "exhausted": outcome.exhausted,
        "initial_candidate_count": outcome.initial_candidate_count,
        "iteration_count": outcome.iteration_count,
        "remaining_candidate_count": len(outcome.remaining_queries),
        "identified_sql": identified_sql,
        "iterations": [
            iteration_record_dict(record, include_timings=include_timings)
            for record in outcome.iterations
        ],
        "rounds": [feedback_round_dict(round_) for round_ in session.last_rounds],
    }
    if include_timings:
        payload["query_generation_seconds"] = outcome.query_generation_seconds
        payload["total_seconds"] = outcome.total_seconds
    return payload


def transcript_json(transcript: dict) -> str:
    """Canonical JSON text of a transcript dict (stable keys and separators)."""
    return json.dumps(transcript, sort_keys=True, separators=(",", ":"))
