"""Command-line entry point for the QFE session service.

Installed as the ``qfe-serve`` console script (also ``python -m repro.service``)::

    qfe-serve                                   # in-memory, serial backend
    qfe-serve --port 8642 --workers 4           # shared 4-process round search
    qfe-serve --store-dir ./checkpoints         # durable: kill/restart resumes

With ``--store-dir`` every session is checkpointed after each step, so a
killed or restarted server picks sessions up exactly where they were (the
client just keeps using the same session id). ``--session-ttl`` and
``--max-stored-sessions`` bound the checkpoint store; ``--max-live-sessions``
bounds resident sessions (least-recently-used ones passivate to the store).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.config import BACKEND_CHOICES, backend_name, nonnegative_int

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise ValueError("must be at least 1")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise ValueError("must be positive")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the service CLI."""
    parser = argparse.ArgumentParser(
        prog="qfe-serve",
        description="Serve QFE sessions over HTTP: many concurrent interactive users, "
                    "one shared round-search backend, checkpointed resumable sessions.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8642, help="bind port (default 8642)")
    parser.add_argument(
        "--workers", type=nonnegative_int, default=0,
        help="worker processes for the shared round-search pool "
             "(0/1 = serial; the pool is shared by every session)",
    )
    parser.add_argument(
        "--backend", type=backend_name, default="auto", metavar="NAME",
        help="shared round-search backend: "
             f"{', '.join(BACKEND_CHOICES)} (auto derives it from --workers; "
             "the backend is shared by every session)",
    )
    parser.add_argument(
        "--store-dir", default=None,
        help="directory for on-disk session checkpoints (enables kill/restart resume)",
    )
    parser.add_argument(
        "--max-live-sessions", type=_positive_int, default=64,
        help="resident session cap; least-recently-used sessions passivate to the store",
    )
    parser.add_argument(
        "--max-stored-sessions", type=_positive_int, default=None,
        help="checkpoint store cap (least-recently-used checkpoints evict first)",
    )
    parser.add_argument(
        "--session-ttl", type=_positive_float, default=None,
        help="seconds of inactivity after which stored checkpoints expire",
    )
    parser.add_argument(
        "--no-checkpoint", action="store_true",
        help="with --store-dir: do not checkpoint after every step (only on shutdown)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write round-lifecycle spans for every request the server "
             "handles as JSON lines to this file (inspect with "
             "`qfe-trace summary PATH`)",
    )
    parser.add_argument("--verbose", action="store_true", help="log every HTTP request")
    return parser


def main(argv: Sequence[str] | None = None, *, output=None) -> int:
    """CLI entry point; returns a process exit code."""
    output = output or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.service.manager import SessionManager
    from repro.service.server import make_server
    from repro.service.store import FileSessionStore

    store = None
    if args.store_dir:
        store = FileSessionStore(
            args.store_dir,
            max_sessions=args.max_stored_sessions,
            ttl_seconds=args.session_ttl,
        )
    manager = SessionManager(
        workers=args.workers,
        backend_name=args.backend,
        store=store,
        checkpoint_each_step=not args.no_checkpoint,
        max_live_sessions=args.max_live_sessions,
    )
    server = make_server(manager, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    print(
        f"qfe-serve listening on http://{host}:{port} "
        f"(backend={manager.backend.name}, "
        f"store={'disk:' + str(args.store_dir) if store is not None else 'memory'})",
        file=output,
        flush=True,
    )
    if args.trace_out:
        from repro.obs.trace import start_tracing

        start_tracing(args.trace_out)
        print(f"tracing spans to {args.trace_out}", file=output, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (checkpointing live sessions)", file=output, flush=True)
    finally:
        try:
            server.shutdown()
        except Exception:
            pass
        server.server_close()
        manager.close()
        if args.trace_out:
            from repro.obs.trace import stop_tracing

            stop_tracing()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
