"""Configuration of the QBO-style candidate query generator.

Section 4 of the paper: "QBO provides several configuration parameters to
control the search space for equivalent candidate queries, such as the
maximum number of selection-predicate attributes, the maximum number of
joined relations, the maximum number of selection predicates in each
conjunct, etc."  :class:`QBOConfig` exposes exactly that surface, plus limits
that keep the pure-Python search bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QBOConfig"]


@dataclass(frozen=True)
class QBOConfig:
    """Search-space knobs of the candidate query generator.

    Attributes
    ----------
    max_join_relations:
        Maximum number of relations in a candidate query's join schema.
    max_selection_attributes:
        Maximum number of *distinct* attributes used in a candidate's
        selection predicate.
    max_terms_per_conjunct:
        Maximum number of terms in each conjunct of the DNF predicate.
    max_conjuncts:
        Maximum number of disjuncts (conjuncts) in the DNF predicate.
    max_candidates:
        Hard cap on the number of candidate queries returned.
    max_projection_mappings:
        Cap on how many distinct projection-column mappings are explored per
        join schema (result columns can map to several joined columns).
    threshold_variants:
        How many alternative numeric cut points are emitted per informative
        boundary (1 = just the tightest cut, 2 adds the midpoint, 3 also adds
        the loosest cut). More variants mean more distinguishable candidates
        for QFE to winnow — exactly the redundancy the paper's Table 6
        experiment manufactures by mutating constants.
    allow_membership_terms:
        Whether ``IN (…)`` terms over categorical attributes are generated.
    allow_negated_terms:
        Whether ``!=`` / ``NOT IN`` terms are generated.
    allow_true_predicate:
        Whether the unrestricted query (no WHERE clause) is emitted when it
        already reproduces the example result.
    include_distinct_variants:
        Whether set-semantics (``DISTINCT``) variants are emitted when the
        example result contains no duplicates.
    match_columns_by_name:
        Prefer joined columns whose (unqualified) name matches the result
        column name when inferring the projection.
    exclude_key_columns:
        Do not build selection predicates over primary-key or foreign-key
        columns (surrogate identifiers). Such predicates are rarely what a
        user means and — because QFE never modifies key columns when
        generating distinguishing databases — they could never be winnowed.
    max_search_nodes:
        Budget on conjunction-search nodes per (join schema, projection) to
        keep worst-case generation time bounded.
    """

    max_join_relations: int = 3
    max_selection_attributes: int = 4
    max_terms_per_conjunct: int = 4
    max_conjuncts: int = 2
    max_candidates: int = 200
    max_projection_mappings: int = 8
    threshold_variants: int = 2
    allow_membership_terms: bool = True
    allow_negated_terms: bool = False
    allow_true_predicate: bool = True
    include_distinct_variants: bool = False
    match_columns_by_name: bool = True
    exclude_key_columns: bool = True
    max_search_nodes: int = 20_000

    def __post_init__(self) -> None:
        if self.max_join_relations < 1:
            raise ValueError("max_join_relations must be at least 1")
        if self.max_terms_per_conjunct < 1:
            raise ValueError("max_terms_per_conjunct must be at least 1")
        if self.max_conjuncts < 1:
            raise ValueError("max_conjuncts must be at least 1")
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be at least 1")
        if self.threshold_variants < 1 or self.threshold_variants > 3:
            raise ValueError("threshold_variants must be 1, 2 or 3")

    @classmethod
    def exhaustive(cls) -> "QBOConfig":
        """A configuration that generates as many candidates as practical.

        Mirrors the paper's experimental setup, which "configured QBO to
        generate as many candidate queries as possible".
        """
        return cls(
            max_join_relations=4,
            max_selection_attributes=6,
            max_terms_per_conjunct=6,
            max_conjuncts=3,
            max_candidates=500,
            threshold_variants=3,
            allow_membership_terms=True,
            allow_negated_terms=True,
        )

    @classmethod
    def conservative(cls) -> "QBOConfig":
        """A small search space (the paper's footnote 2 recommendation)."""
        return cls(
            max_join_relations=2,
            max_selection_attributes=2,
            max_terms_per_conjunct=2,
            max_conjuncts=1,
            max_candidates=50,
            threshold_variants=1,
        )
