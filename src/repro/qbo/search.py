"""Selection-predicate search: conjunctions and DNF covers over atom pools.

Two entry points:

* :func:`search_conjunctions` — enumerate conjunctions (subsets of the atom
  pool) that select every positive row and reject every negative row. All
  valid combinations up to the configured size limits are returned (within a
  node budget), because *each* of them is a legitimate candidate query that
  QFE must later tell apart.
* :func:`search_dnf_covers` — when no single conjunction separates positives
  from negatives, greedily build a disjunction of conjunctions by sequential
  covering: each conjunct is anchored on an uncovered positive row, must
  reject every negative row, and is grown to cover as many positives as
  possible.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.qbo.atoms import Atom, build_atom_pool
from repro.qbo.config import QBOConfig
from repro.relational.join import JoinedRelation
from repro.relational.predicates import Conjunct, DNFPredicate

__all__ = ["search_conjunctions", "search_dnf_covers"]


def _distinct_attributes(atoms: Sequence[Atom]) -> int:
    return len({atom.term.attribute for atom in atoms})


def search_conjunctions(
    atoms: Sequence[Atom],
    positive: Sequence[int],
    negative: Sequence[int],
    config: QBOConfig,
) -> list[Conjunct]:
    """All conjunctions of atoms that keep every positive and drop every negative.

    The atoms are assumed to already select every positive row (that is how
    :func:`repro.qbo.atoms.build_atom_pool` constructs them), so the search
    only has to check negative coverage. Combinations are enumerated in
    increasing size; supersets of an already-valid combination are skipped so
    the result lists *irredundant* predicates, and the whole search respects
    ``config.max_search_nodes``.
    """
    negative_set = frozenset(negative)
    if not negative_set:
        return [Conjunct(())]

    valid: list[Conjunct] = []
    valid_keys: list[frozenset] = []
    nodes = 0
    max_size = min(config.max_terms_per_conjunct, len(atoms))
    for size in range(1, max_size + 1):
        for combo in combinations(range(len(atoms)), size):
            nodes += 1
            if nodes > config.max_search_nodes:
                return valid
            picked = [atoms[i] for i in combo]
            if _distinct_attributes(picked) > config.max_selection_attributes:
                continue
            combo_key = frozenset(combo)
            if any(existing <= combo_key for existing in valid_keys):
                continue  # a subset already separates; skip redundant supersets
            excluded: set[int] = set()
            for atom in picked:
                excluded |= set(negative_set) - set(atom.selected)
            if excluded >= negative_set:
                valid.append(Conjunct(tuple(atom.term for atom in picked)))
                valid_keys.append(combo_key)
    return valid


def _grow_conjunct_for_seed(
    joined: JoinedRelation,
    seed: int,
    positives: Sequence[int],
    negatives: Sequence[int],
    config: QBOConfig,
    excluded_attributes: Sequence[str] = (),
) -> tuple[Conjunct, frozenset] | None:
    """Learn one conjunct that keeps *seed*, drops all negatives, keeps many positives."""
    pool = build_atom_pool(
        joined, [seed], negatives, config, excluded_attributes=excluded_attributes
    )
    if not pool:
        return None
    remaining_negatives = set(negatives)
    chosen: list[Atom] = []
    covered = frozenset(positives)
    while remaining_negatives and len(chosen) < config.max_terms_per_conjunct:
        best: tuple[int, int, Atom] | None = None
        for atom in pool:
            if atom in chosen:
                continue
            newly_excluded = remaining_negatives - set(atom.selected)
            if not newly_excluded:
                continue
            kept_positives = covered & atom.selected
            key = (len(newly_excluded), len(kept_positives))
            if best is None or key > (best[0], best[1]):
                best = (len(newly_excluded), len(kept_positives), atom)
        if best is None:
            return None
        atom = best[2]
        chosen.append(atom)
        remaining_negatives -= remaining_negatives - set(atom.selected)
        covered = covered & atom.selected
    if remaining_negatives:
        return None
    return Conjunct(tuple(atom.term for atom in chosen)), covered


def search_dnf_covers(
    joined: JoinedRelation,
    positive: Sequence[int],
    negative: Sequence[int],
    config: QBOConfig,
    *,
    excluded_attributes: Sequence[str] = (),
) -> list[DNFPredicate]:
    """Greedy sequential-covering search for multi-conjunct DNF predicates.

    Returns at most one DNF predicate (the greedy cover) — richer enumeration
    of alternative covers explodes combinatorially and the single cover is
    enough for the generator to offer a DNF-shaped candidate when no single
    conjunction reproduces the example result.
    """
    uncovered = set(positive)
    conjuncts: list[Conjunct] = []
    guard = 0
    while uncovered and len(conjuncts) < config.max_conjuncts and guard < 10 * len(positive) + 10:
        guard += 1
        seed = min(uncovered)
        learned = _grow_conjunct_for_seed(
            joined, seed, sorted(uncovered), negative, config, excluded_attributes
        )
        if learned is None:
            return []
        conjunct, covered = learned
        newly_covered = uncovered & covered
        if not newly_covered:
            newly_covered = {seed} if seed in covered else set()
            if not newly_covered:
                return []
        conjuncts.append(conjunct)
        uncovered -= newly_covered
    if uncovered:
        return []
    return [DNFPredicate(tuple(conjuncts))]
