"""Join-schema enumeration over the foreign-key graph.

Candidate queries join a *connected* subset of the database's relations along
foreign keys (Section 4). This module enumerates those subsets in increasing
size up to the configured maximum, deterministically ordered, using the
schema's join graph.
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx

from repro.qbo.config import QBOConfig
from repro.relational.schema import DatabaseSchema

__all__ = ["enumerate_join_schemas"]


def enumerate_join_schemas(schema: DatabaseSchema, config: QBOConfig) -> list[tuple[str, ...]]:
    """All connected table subsets of size 1..``max_join_relations``.

    Subsets are returned smallest-first (cheaper joins are tried before wider
    ones) and alphabetically within a size for determinism.
    """
    graph = nx.Graph(schema.join_graph())
    tables = sorted(schema.table_names)
    schemas: list[tuple[str, ...]] = []
    max_size = min(config.max_join_relations, len(tables))
    for size in range(1, max_size + 1):
        for subset in combinations(tables, size):
            if size == 1:
                schemas.append(subset)
                continue
            subgraph = graph.subgraph(subset)
            if len(subgraph) == size and nx.is_connected(subgraph):
                schemas.append(subset)
    return schemas
