"""The Query Generator module (Section 4).

Given an example database–result pair ``(D, R)``, :class:`QueryGenerator`
reverse-engineers a set of candidate SPJ queries ``QC`` with ``Q(D) = R`` for
every ``Q ∈ QC``, in the spirit of the QBO system of Tran et al. that the
paper plugs in. The pipeline per candidate join schema is:

1. materialize the foreign-key join;
2. enumerate plausible projections (:mod:`repro.qbo.projection`);
3. label joined rows as positive/negative/ambiguous (:mod:`repro.qbo.labeling`);
4. build the atom pool and search conjunctions / DNF covers
   (:mod:`repro.qbo.atoms`, :mod:`repro.qbo.search`);
5. verify each assembled query by exact (bag or set) result equality and
   deduplicate.

The generator is deterministic for a given configuration and input pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.exceptions import NoCandidateQueriesError
from repro.qbo.atoms import build_atom_pool
from repro.qbo.config import QBOConfig
from repro.qbo.join_enumeration import enumerate_join_schemas
from repro.qbo.labeling import label_rows
from repro.qbo.projection import candidate_projections
from repro.qbo.search import search_conjunctions, search_dnf_covers
from repro.relational.database import Database
from repro.relational.evaluator import evaluate_batch, result_fingerprint
from repro.relational.join import foreign_key_join
from repro.relational.predicates import DNFPredicate
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = ["QueryGenerator", "GenerationReport"]


@dataclass
class GenerationReport:
    """Diagnostics of one generation run (useful in experiments and tests)."""

    candidate_count: int = 0
    join_schemas_tried: int = 0
    projections_tried: int = 0
    predicates_verified: int = 0
    predicates_rejected: int = 0
    elapsed_seconds: float = 0.0
    join_schema_sizes: dict[int, int] = field(default_factory=dict)


class QueryGenerator:
    """Reverse-engineer candidate SPJ queries from a ``(D, R)`` example pair."""

    def __init__(self, config: QBOConfig | None = None) -> None:
        self.config = config or QBOConfig()
        self.last_report: GenerationReport | None = None

    # ------------------------------------------------------------------- API
    def generate(
        self,
        database: Database,
        result: Relation,
        *,
        set_semantics: bool = False,
    ) -> list[SPJQuery]:
        """All candidate queries consistent with the pair, deterministically ordered.

        Raises :class:`NoCandidateQueriesError` when the search space contains
        no consistent query (e.g. the result references values absent from the
        database).
        """
        config = self.config
        report = GenerationReport()
        started = perf_counter()
        candidates: dict[tuple, SPJQuery] = {}
        target_fingerprint = result_fingerprint(result, set_semantics=set_semantics)

        for join_tables in enumerate_join_schemas(database.schema, config):
            report.join_schemas_tried += 1
            report.join_schema_sizes[len(join_tables)] = (
                report.join_schema_sizes.get(len(join_tables), 0) + 1
            )
            try:
                joined = foreign_key_join(database, list(join_tables))
            except Exception:  # not join-connected in a usable way
                continue
            if len(joined) == 0:
                continue
            for projection in candidate_projections(joined, result, config):
                report.projections_tried += 1
                self._candidates_for_projection(
                    database,
                    result,
                    joined,
                    join_tables,
                    projection,
                    set_semantics,
                    target_fingerprint,
                    candidates,
                    report,
                )
                if len(candidates) >= config.max_candidates:
                    break
            if len(candidates) >= config.max_candidates:
                break

        report.candidate_count = len(candidates)
        report.elapsed_seconds = perf_counter() - started
        self.last_report = report
        if not candidates:
            raise NoCandidateQueriesError(
                "no candidate SPJ query reproduces the example result under the "
                "current QBOConfig; try QBOConfig.exhaustive() or check the (D, R) pair"
            )
        ordered = sorted(
            candidates.values(),
            key=lambda q: (len(q.tables), q.predicate.term_count(), str(q)),
        )
        return ordered[: config.max_candidates]

    # ------------------------------------------------------------------ steps
    def _excluded_attributes(self, database: Database, join_tables: tuple[str, ...]) -> tuple[str, ...]:
        """Qualified key columns that must not appear in selection predicates."""
        if not self.config.exclude_key_columns:
            return ()
        excluded: list[str] = []
        schema = database.schema
        for table in join_tables:
            for column in schema.table(table).primary_key:
                excluded.append(f"{table}.{column}")
        for fk in schema.foreign_keys:
            if fk.child_table in join_tables:
                excluded.extend(f"{fk.child_table}.{c}" for c in fk.child_columns)
            if fk.parent_table in join_tables:
                excluded.extend(f"{fk.parent_table}.{c}" for c in fk.parent_columns)
        return tuple(dict.fromkeys(excluded))

    def _candidates_for_projection(
        self,
        database: Database,
        result: Relation,
        joined,
        join_tables: tuple[str, ...],
        projection: tuple[str, ...],
        set_semantics: bool,
        target_fingerprint,
        candidates: dict,
        report: GenerationReport,
    ) -> None:
        config = self.config
        projection_positions = [joined.relation.schema.index_of(a) for a in projection]
        labeling = label_rows(joined, projection_positions, result, set_semantics=set_semantics)
        if not labeling.feasible:
            return

        predicates: list[DNFPredicate] = []
        if labeling.is_trivially_all and config.allow_true_predicate:
            predicates.append(DNFPredicate.true())
        excluded = self._excluded_attributes(database, join_tables)
        # Ambiguous rows (projected-value groups only partially required by R)
        # may or may not belong to the selection; search both readings and let
        # the exact bag-equality verification decide.
        keep_drop_variants = [
            (
                list(labeling.positive_rows) + list(labeling.ambiguous_rows),
                list(labeling.negative_rows),
            )
        ]
        if labeling.has_ambiguity and labeling.positive_rows:
            keep_drop_variants.append(
                (list(labeling.positive_rows), list(labeling.negative_rows))
            )
        seen_predicates: set = set()
        for must_keep, must_drop in keep_drop_variants:
            if not must_keep or not must_drop:
                continue
            atoms = build_atom_pool(
                joined, must_keep, must_drop, config, excluded_attributes=excluded
            )
            found_for_variant: list[DNFPredicate] = []
            for conjunct in search_conjunctions(atoms, must_keep, must_drop, config):
                found_for_variant.append(
                    DNFPredicate((conjunct,)) if conjunct.terms else DNFPredicate.true()
                )
            if not found_for_variant and config.max_conjuncts > 1:
                found_for_variant.extend(
                    search_dnf_covers(
                        joined, must_keep, must_drop, config, excluded_attributes=excluded
                    )
                )
            for predicate in found_for_variant:
                key = predicate.canonical_key()
                if key not in seen_predicates:
                    seen_predicates.add(key)
                    predicates.append(predicate)

        # Verify all assembled queries in one columnar batch over the shared
        # join: every distinct selection term is evaluated once per column,
        # and queries selecting identical rows share one materialized result
        # and fingerprint. Bag/set fingerprint equality is exactly bag/set
        # result equality, so comparing against the target fingerprint is the
        # same check ``results_equal`` performed row-at-a-time before.
        pending: list[tuple[tuple, SPJQuery]] = []
        pending_keys: set = set()
        for predicate in predicates:
            query = SPJQuery(join_tables, projection, predicate)
            key = query.canonical_key()
            if key in candidates or key in pending_keys:
                continue
            pending_keys.add(key)
            pending.append((key, query))
        if not pending:
            return
        batch = evaluate_batch(
            [query for _, query in pending],
            joined,
            database,
            set_semantics=set_semantics,
            name=result.schema.name,
        )
        for (key, query), fingerprint in zip(pending, batch.fingerprints):
            report.predicates_verified += 1
            if fingerprint == target_fingerprint:
                candidates[key] = query
                if config.include_distinct_variants and not set_semantics:
                    # The distinct variant reuses the cached predicate mask;
                    # only the deduplicated gather is new work.
                    distinct_query = query.with_distinct(True)
                    distinct_batch = evaluate_batch(
                        [distinct_query], joined, database, name=result.schema.name
                    )
                    if distinct_batch.fingerprints[0] == target_fingerprint:
                        candidates[distinct_query.canonical_key()] = distinct_query
            else:
                report.predicates_rejected += 1
            if len(candidates) >= config.max_candidates:
                return
