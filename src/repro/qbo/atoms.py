"""Candidate atomic predicates ("atoms") for the selection-predicate search.

For every attribute of the joined relation the generator builds a pool of
candidate :class:`~repro.relational.predicates.Term` objects that *all
positive rows satisfy* (a necessary condition for a term to appear in a
single-conjunct predicate) and that *exclude at least one negative row* (a
term excluding nothing can never help). The conjunction search then combines
atoms from different attributes.

Numeric attributes yield threshold atoms at the boundary between the positive
value range and the nearest excluded values; the ``threshold_variants``
configuration controls how many equivalent-on-D cut points are emitted
(tightest, midpoint, loosest), which is what makes several *distinct but
D-equivalent* candidate queries exist — the redundancy QFE is designed to
winnow. Categorical attributes yield equality / membership atoms over the
positive value set (and negated forms when enabled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.qbo.config import QBOConfig
from repro.relational.join import JoinedRelation
from repro.relational.predicates import ComparisonOp, Term
from repro.relational.types import value_sort_key

__all__ = ["Atom", "build_atom_pool"]


@dataclass(frozen=True)
class Atom:
    """A candidate term together with the set of rows (positions) it selects."""

    term: Term
    selected: frozenset

    def excludes(self, positions: Sequence[int]) -> frozenset:
        """The subset of *positions* this atom's term rejects."""
        return frozenset(p for p in positions if p not in self.selected)


def _column_values(joined: JoinedRelation, attribute: str) -> list[Any]:
    position = joined.relation.schema.index_of(attribute)
    return [row.values[position] for row in joined.relation.tuples]


def _is_numeric_value(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _selected_rows(values: list[Any], term: Term) -> frozenset:
    return frozenset(i for i, value in enumerate(values) if term.evaluate_value(value))


def _midpoint(low: float, high: float) -> float:
    middle = (low + high) / 2.0
    if float(middle).is_integer() and isinstance(low, (int, float)) and isinstance(high, (int, float)):
        return float(middle)
    return middle


def _numeric_atoms(
    attribute: str,
    values: list[Any],
    positive: Sequence[int],
    negative: Sequence[int],
    config: QBOConfig,
) -> list[Term]:
    positive_values = [values[i] for i in positive if values[i] is not None]
    if not positive_values or not all(_is_numeric_value(v) for v in positive_values):
        return []
    pos_min = float(min(positive_values))
    pos_max = float(max(positive_values))
    negative_values = [
        float(values[i]) for i in negative if values[i] is not None and _is_numeric_value(values[i])
    ]
    # Candidate threshold variants that are equivalent *on this database* are
    # exactly what QFE winnows later — but only when a value could ever fall
    # between them. On an integer-valued column, thresholds with no integer in
    # between are the same query, so emitting both would create permanently
    # indistinguishable candidates.
    integer_domain = all(
        float(v).is_integer() for v in positive_values + negative_values
    )
    terms: list[Term] = []

    # Upper-bound atoms: exclude negatives strictly above the positive range.
    above = sorted(v for v in negative_values if v > pos_max)
    if above:
        nearest = above[0]
        variants = [Term(attribute, ComparisonOp.LE, _clean(pos_max))]
        gap_has_value = (nearest - pos_max) > 1 if integer_domain else True
        if config.threshold_variants >= 2 and gap_has_value:
            # On integer columns the cut sits just above the next representable
            # value so it stays distinguishable from the tight LE variant.
            midpoint = pos_max + 1.5 if integer_domain else _midpoint(pos_max, nearest)
            variants.append(Term(attribute, ComparisonOp.LT, _clean(midpoint)))
        if config.threshold_variants >= 3 and (
            (nearest - pos_max) > 2 if integer_domain else True
        ):
            variants.append(Term(attribute, ComparisonOp.LT, _clean(nearest)))
        terms.extend(variants)

    # Lower-bound atoms: exclude negatives strictly below the positive range.
    below = sorted((v for v in negative_values if v < pos_min), reverse=True)
    if below:
        nearest = below[0]
        variants = [Term(attribute, ComparisonOp.GE, _clean(pos_min))]
        gap_has_value = (pos_min - nearest) > 1 if integer_domain else True
        if config.threshold_variants >= 2 and gap_has_value:
            midpoint = pos_min - 1.5 if integer_domain else _midpoint(nearest, pos_min)
            variants.append(Term(attribute, ComparisonOp.GT, _clean(midpoint)))
        if config.threshold_variants >= 3 and (
            (pos_min - nearest) > 2 if integer_domain else True
        ):
            variants.append(Term(attribute, ComparisonOp.GT, _clean(nearest)))
        terms.extend(variants)

    # Equality atom when all positives share one value.
    distinct_positive = sorted({float(v) for v in positive_values})
    if len(distinct_positive) == 1:
        terms.append(Term(attribute, ComparisonOp.EQ, _clean(distinct_positive[0])))
    elif config.allow_membership_terms and 1 < len(distinct_positive) <= 6:
        terms.append(
            Term(attribute, ComparisonOp.IN, tuple(_clean(v) for v in distinct_positive))
        )
    return terms


def _clean(value: float) -> Any:
    if float(value).is_integer():
        return int(value)
    return float(value)


def _categorical_atoms(
    attribute: str,
    values: list[Any],
    positive: Sequence[int],
    negative: Sequence[int],
    config: QBOConfig,
) -> list[Term]:
    positive_values = sorted(
        {values[i] for i in positive if values[i] is not None}, key=value_sort_key
    )
    if not positive_values:
        return []
    negative_values = sorted(
        {values[i] for i in negative if values[i] is not None}, key=value_sort_key
    )
    terms: list[Term] = []
    if len(positive_values) == 1:
        terms.append(Term(attribute, ComparisonOp.EQ, positive_values[0]))
    elif config.allow_membership_terms and len(positive_values) <= 8:
        terms.append(Term(attribute, ComparisonOp.IN, tuple(positive_values)))
    if config.allow_negated_terms and negative_values:
        excluded = [v for v in negative_values if v not in positive_values]
        if len(excluded) == 1:
            terms.append(Term(attribute, ComparisonOp.NE, excluded[0]))
        elif 1 < len(excluded) <= 8:
            terms.append(Term(attribute, ComparisonOp.NOT_IN, tuple(excluded)))
    return terms


def build_atom_pool(
    joined: JoinedRelation,
    positive: Sequence[int],
    negative: Sequence[int],
    config: QBOConfig,
    *,
    excluded_attributes: Sequence[str] = (),
) -> list[Atom]:
    """Build the pool of candidate atoms for a (join schema, labeling) pair.

    Every returned atom selects all *positive* rows and rejects at least one
    *negative* row; atoms are deterministically ordered by how many negatives
    they reject (most useful first) and then by their textual form.
    """
    atoms: list[Atom] = []
    negative_set = list(negative)
    for attribute in joined.relation.schema.attribute_names:
        if attribute in excluded_attributes:
            continue
        values = _column_values(joined, attribute)
        candidate_terms: list[Term] = []
        candidate_terms.extend(_numeric_atoms(attribute, values, positive, negative_set, config))
        positive_values = [values[i] for i in positive]
        if not all(_is_numeric_value(v) or v is None for v in positive_values):
            candidate_terms.extend(
                _categorical_atoms(attribute, values, positive, negative_set, config)
            )
        for term in candidate_terms:
            selected = _selected_rows(values, term)
            if not all(p in selected for p in positive):
                continue
            if all(n in selected for n in negative_set) and negative_set:
                continue  # rejects nothing — useless
            atoms.append(Atom(term, selected))

    unique: dict[tuple, Atom] = {}
    for atom in atoms:
        key = (atom.term.attribute, atom.term.op.value, atom.term.constants())
        unique.setdefault(key, atom)
    ordered = sorted(
        unique.values(),
        key=lambda a: (-len(a.excludes(negative_set)), str(a.term)),
    )
    return ordered
