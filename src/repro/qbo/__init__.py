"""QBO-style candidate query generation (the paper's Query Generator module)."""

from repro.qbo.config import QBOConfig
from repro.qbo.generator import GenerationReport, QueryGenerator
from repro.qbo.mutation import expand_candidate_set, mutate_candidates

__all__ = [
    "QBOConfig",
    "QueryGenerator",
    "GenerationReport",
    "mutate_candidates",
    "expand_candidate_set",
]
