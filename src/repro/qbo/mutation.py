"""Candidate expansion by constant mutation (the paper's Table 6 device).

Section 7.6: "we generated 61 additional candidate queries from the initial
candidate queries by modifying their selection predicate constants". This
module reproduces that device: it perturbs numeric constants of existing
candidates within the slack that keeps the query's result on ``D`` unchanged,
and swaps categorical equality constants for other values that leave the
result unchanged, verifying every mutant by exact evaluation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.relational.database import Database
from repro.relational.evaluator import JoinCache, results_equal
from repro.relational.predicates import ComparisonOp, Conjunct, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = ["mutate_candidates", "expand_candidate_set"]


def _numeric_variants(constant: float) -> Iterator[float]:
    """Nearby numeric constants to try, ordered by distance from the original."""
    magnitude = max(abs(float(constant)), 1.0)
    for fraction in (0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5):
        step = magnitude * fraction
        yield float(constant) + step
        yield float(constant) - step


def _mutated_terms(term: Term, database: Database, query: SPJQuery) -> Iterator[Term]:
    if term.op.is_membership:
        return
    constant = term.constant
    if isinstance(constant, bool):
        return
    if isinstance(constant, (int, float)):
        is_integer_domain = isinstance(constant, int)
        for variant in _numeric_variants(float(constant)):
            value = int(round(variant)) if is_integer_domain else round(variant, 6)
            if value != constant:
                yield term.with_constant(value)
        return
    if isinstance(constant, str) and term.op in (ComparisonOp.EQ, ComparisonOp.NE):
        table, _, column = term.attribute.partition(".")
        if table in database.relations:
            for value in database.relation(table).active_domain(column):
                if isinstance(value, str) and value != constant:
                    yield term.with_constant(value)


def mutate_candidates(
    database: Database,
    result: Relation,
    candidates: Iterable[SPJQuery],
    *,
    limit: int,
    set_semantics: bool = False,
) -> list[SPJQuery]:
    """Generate up to *limit* additional result-preserving mutants of *candidates*.

    Each mutant differs from its parent in exactly one selection-predicate
    constant and still satisfies ``Q(D) = R`` (verified by evaluation).
    """
    cache = JoinCache()
    existing = {query.canonical_key() for query in candidates}
    mutants: list[SPJQuery] = []
    for parent in candidates:
        for conjunct_index, conjunct in enumerate(parent.predicate.conjuncts):
            for term_index, term in enumerate(conjunct.terms):
                for mutated_term in _mutated_terms(term, database, parent):
                    new_terms = list(conjunct.terms)
                    new_terms[term_index] = mutated_term
                    new_conjuncts = list(parent.predicate.conjuncts)
                    new_conjuncts[conjunct_index] = Conjunct(tuple(new_terms))
                    mutant = parent.with_predicate(DNFPredicate(tuple(new_conjuncts)))
                    key = mutant.canonical_key()
                    if key in existing:
                        continue
                    produced = cache.evaluate(mutant, database, name=result.schema.name)
                    if not results_equal(produced, result, set_semantics=set_semantics):
                        continue
                    existing.add(key)
                    mutants.append(mutant)
                    if len(mutants) >= limit:
                        return mutants
    return mutants


def expand_candidate_set(
    database: Database,
    result: Relation,
    candidates: list[SPJQuery],
    target_size: int,
    *,
    set_semantics: bool = False,
) -> list[SPJQuery]:
    """Grow the candidate list to *target_size* queries by constant mutation.

    Returns the original candidates followed by verified mutants; if not
    enough result-preserving mutants exist the list may stay shorter than the
    target.
    """
    if len(candidates) >= target_size:
        return list(candidates[:target_size])
    needed = target_size - len(candidates)
    mutants = mutate_candidates(
        database, result, candidates, limit=needed, set_semantics=set_semantics
    )
    return list(candidates) + mutants
