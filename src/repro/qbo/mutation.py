"""Candidate expansion by constant mutation (the paper's Table 6 device).

Section 7.6: "we generated 61 additional candidate queries from the initial
candidate queries by modifying their selection predicate constants". This
module reproduces that device: it perturbs numeric constants of existing
candidates within the slack that keeps the query's result on ``D`` unchanged,
and swaps categorical equality constants for other values that leave the
result unchanged, verifying every mutant by exact evaluation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.relational.database import Database
from repro.relational.evaluator import JoinCache, result_fingerprint
from repro.relational.predicates import ComparisonOp, Conjunct, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = ["mutate_candidates", "expand_candidate_set"]


def _numeric_variants(constant: float) -> Iterator[float]:
    """Nearby numeric constants to try, ordered by distance from the original."""
    magnitude = max(abs(float(constant)), 1.0)
    for fraction in (0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5):
        step = magnitude * fraction
        yield float(constant) + step
        yield float(constant) - step


def _mutated_terms(term: Term, database: Database, query: SPJQuery) -> Iterator[Term]:
    if term.op.is_membership:
        return
    constant = term.constant
    if isinstance(constant, bool):
        return
    if isinstance(constant, (int, float)):
        is_integer_domain = isinstance(constant, int)
        for variant in _numeric_variants(float(constant)):
            value = int(round(variant)) if is_integer_domain else round(variant, 6)
            if value != constant:
                yield term.with_constant(value)
        return
    if isinstance(constant, str) and term.op in (ComparisonOp.EQ, ComparisonOp.NE):
        table, _, column = term.attribute.partition(".")
        if table in database.relations:
            for value in database.relation(table).active_domain(column):
                if isinstance(value, str) and value != constant:
                    yield term.with_constant(value)


def _mutants_of(parent: SPJQuery, database: Database) -> Iterator[SPJQuery]:
    """All single-constant mutants of *parent*, in deterministic order."""
    for conjunct_index, conjunct in enumerate(parent.predicate.conjuncts):
        for term_index, term in enumerate(conjunct.terms):
            for mutated_term in _mutated_terms(term, database, parent):
                new_terms = list(conjunct.terms)
                new_terms[term_index] = mutated_term
                new_conjuncts = list(parent.predicate.conjuncts)
                new_conjuncts[conjunct_index] = Conjunct(tuple(new_terms))
                yield parent.with_predicate(DNFPredicate(tuple(new_conjuncts)))


def mutate_candidates(
    database: Database,
    result: Relation,
    candidates: Iterable[SPJQuery],
    *,
    limit: int,
    set_semantics: bool = False,
    join_cache: JoinCache | None = None,
) -> list[SPJQuery]:
    """Generate up to *limit* additional result-preserving mutants of *candidates*.

    Each mutant differs from its parent in exactly one selection-predicate
    constant and still satisfies ``Q(D) = R`` (verified by evaluation). All of
    a parent's mutants are verified in one columnar batch over the shared
    join: a mutant changes a single constant, so every unchanged term's mask
    is a cache hit and only the mutated term's column is rescanned.
    """
    cache = join_cache if join_cache is not None else JoinCache()
    target_fingerprint = result_fingerprint(result, set_semantics=set_semantics)
    existing = {query.canonical_key() for query in candidates}
    mutants: list[SPJQuery] = []
    for parent in candidates:
        pending: list[SPJQuery] = []
        for mutant in _mutants_of(parent, database):
            key = mutant.canonical_key()
            if key in existing:
                continue
            existing.add(key)
            pending.append(mutant)
        if not pending:
            continue
        batch = cache.evaluate_batch(
            pending, database, set_semantics=set_semantics, name=result.schema.name
        )
        for mutant, fingerprint in zip(pending, batch.fingerprints):
            if fingerprint != target_fingerprint:
                existing.discard(mutant.canonical_key())
                continue
            mutants.append(mutant)
            if len(mutants) >= limit:
                return mutants
    return mutants


def expand_candidate_set(
    database: Database,
    result: Relation,
    candidates: list[SPJQuery],
    target_size: int,
    *,
    set_semantics: bool = False,
    join_cache: JoinCache | None = None,
) -> list[SPJQuery]:
    """Grow the candidate list to *target_size* queries by constant mutation.

    Returns the original candidates followed by verified mutants; if not
    enough result-preserving mutants exist the list may stay shorter than the
    target. A caller-provided *join_cache* (e.g. the session's) lets mutant
    verification reuse the original database's joins and term masks.
    """
    if len(candidates) >= target_size:
        return list(candidates[:target_size])
    needed = target_size - len(candidates)
    mutants = mutate_candidates(
        database,
        result,
        candidates,
        limit=needed,
        set_semantics=set_semantics,
        join_cache=join_cache,
    )
    return list(candidates) + mutants
