"""Projection inference: map result columns to joined columns.

Given the example result ``R`` and a candidate join schema's materialized
join, this module enumerates plausible projection lists — ordered choices of
joined columns, one per result column — filtered by cheap necessary
conditions (type compatibility and value containment) before the expensive
row-labeling step runs.
"""

from __future__ import annotations

from itertools import product
from typing import Any

from repro.qbo.config import QBOConfig
from repro.relational.join import JoinedRelation
from repro.relational.relation import Relation
from repro.relational.types import AttributeType, is_numeric

__all__ = ["candidate_projections"]


def _normalize(value: Any) -> Any:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return value


def _column_value_set(relation: Relation, attribute: str) -> set:
    return {_normalize(v) for v in relation.column(attribute) if v is not None}


def _types_compatible(result_type: AttributeType, joined_type: AttributeType) -> bool:
    if result_type == joined_type:
        return True
    return is_numeric(result_type) and is_numeric(joined_type)


def _name_matches(result_column: str, joined_column: str) -> bool:
    _, _, unqualified = joined_column.partition(".")
    return result_column.lower() in (joined_column.lower(), unqualified.lower())


def candidate_projections(
    joined: JoinedRelation,
    result: Relation,
    config: QBOConfig,
) -> list[tuple[str, ...]]:
    """Plausible projection lists (qualified joined columns) for the result.

    For every result column we collect joined columns of a compatible type
    whose active domain contains every value the result column needs. When
    ``config.match_columns_by_name`` is set and some candidates match the
    result column's name, only those are kept (the common case for SQLShare
    users who keep column names). The cartesian product across result columns
    is capped at ``config.max_projection_mappings``.
    """
    joined_schema = joined.relation.schema
    per_column_candidates: list[list[str]] = []
    for result_attribute in result.schema.attributes:
        needed_values = _column_value_set(result, result_attribute.name)
        matches: list[str] = []
        for joined_attribute in joined_schema.attributes:
            if not _types_compatible(result_attribute.type, joined_attribute.type):
                continue
            available = {
                _normalize(v)
                for v in joined.relation.column(joined_attribute.name)
                if v is not None
            }
            if not needed_values <= available:
                continue
            matches.append(joined_attribute.name)
        if config.match_columns_by_name:
            named = [m for m in matches if _name_matches(result_attribute.name, m)]
            if named:
                matches = named
        if not matches:
            return []
        per_column_candidates.append(matches)

    projections: list[tuple[str, ...]] = []
    for combination in product(*per_column_candidates):
        if len(set(combination)) != len(combination):
            continue  # the same joined column cannot feed two result columns
        projections.append(tuple(combination))
        if len(projections) >= config.max_projection_mappings:
            break
    return projections
