"""Row labeling: which joined rows must (not) be selected to reproduce R.

Given a materialized join ``T`` of a candidate join schema, a projection
mapping and the example result ``R``, every row of ``T`` falls into one of
three classes under bag semantics:

* **positive** — its projected value is required by ``R`` and every row with
  that projected value is needed (required multiplicity equals availability);
* **negative** — its projected value does not occur in ``R`` (required
  multiplicity zero);
* **ambiguous** — some but not all rows sharing its projected value are
  needed (0 < required < available). Candidate predicates cannot be validated
  purely from positives/negatives in this case; the generator still searches
  using the must/must-not rows and relies on the final exact bag-equality
  verification to accept or reject each candidate.

The labeling also detects infeasible projections early (``R`` requires more
copies of a value than the join provides).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Sequence

from repro.relational.join import JoinedRelation
from repro.relational.relation import Relation

__all__ = ["RowLabeling", "label_rows"]


def _normalize(values: Sequence[Any]) -> tuple[Any, ...]:
    return tuple(
        float(v) if isinstance(v, (int, float)) and not isinstance(v, bool) else v
        for v in values
    )


@dataclass(frozen=True)
class RowLabeling:
    """The outcome of labeling the joined rows against an example result."""

    feasible: bool
    positive_rows: tuple[int, ...]
    negative_rows: tuple[int, ...]
    ambiguous_rows: tuple[int, ...]
    required_counts: dict

    @property
    def has_ambiguity(self) -> bool:
        """Whether some projected-value group is only partially required."""
        return bool(self.ambiguous_rows)

    @property
    def is_trivially_all(self) -> bool:
        """Whether selecting every joined row already reproduces the result."""
        return self.feasible and not self.negative_rows and not self.ambiguous_rows


def label_rows(
    joined: JoinedRelation,
    projection_positions: Sequence[int],
    result: Relation,
    *,
    set_semantics: bool = False,
) -> RowLabeling:
    """Label every joined row as positive / negative / ambiguous w.r.t. *result*.

    ``projection_positions`` are column positions in the joined relation that
    map (in order) to the result's columns.
    """
    required: Counter = Counter(_normalize(row) for row in result.rows())
    groups: dict[tuple, list[int]] = {}
    for position, row in enumerate(joined.relation.tuples):
        key = _normalize([row.values[p] for p in projection_positions])
        groups.setdefault(key, []).append(position)

    # Feasibility: every required projected value must be producible, with
    # enough multiplicity under bag semantics.
    for key, count in required.items():
        available = len(groups.get(key, ()))
        if available == 0:
            return RowLabeling(False, (), (), (), dict(required))
        if not set_semantics and available < count:
            return RowLabeling(False, (), (), (), dict(required))

    positives: list[int] = []
    negatives: list[int] = []
    ambiguous: list[int] = []
    for key, positions in groups.items():
        needed = required.get(key, 0)
        if needed == 0:
            negatives.extend(positions)
        elif set_semantics or needed >= len(positions):
            positives.extend(positions)
        else:
            ambiguous.extend(positions)
    return RowLabeling(
        True,
        tuple(sorted(positives)),
        tuple(sorted(negatives)),
        tuple(sorted(ambiguous)),
        dict(required),
    )
